package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/tensor"
)

// startReplicaFleet hosts one serving replica on each worker task of an
// in-process cluster — the deployment shape the router is built for: the
// same cluster.Server that executes training ops co-hosts the predict
// endpoint.
func startReplicaFleet(t *testing.T, replicas, d int) (*cluster.Local, []*Service) {
	t.Helper()
	l, err := cluster.StartLocal(map[string]int{"worker": replicas})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	svcs := make([]*Service, replicas)
	for i := 0; i < replicas; i++ {
		svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 8, Timeout: time.Millisecond})
		mv, err := NewLinear("lin", 1, linearWeights(d, 1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.ServeModel(mv); err != nil {
			t.Fatal(err)
		}
		Attach(l.Server("worker", i), svc)
		svcs[i] = svc
		t.Cleanup(svc.Close)
	}
	return l, svcs
}

func TestRouterSpreadsLoad(t *testing.T) {
	const replicas, d = 3, 32
	l, svcs := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ref := NewLinearMust(t, linearWeights(d, 1))
	const clients, perClient = 12, 30
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				in := randRows(1, d, uint64(c*331+k))
				out, err := r.Predict("lin", sliceRow(in, 0), time.Time{})
				if err != nil {
					errs[c] = err
					return
				}
				want, _ := ref.Predict(in)
				if out.F64()[0] != want.F64()[0] {
					errs[c] = fmt.Errorf("routed result differs from reference")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}

	// Least-loaded spreading: with 12 concurrent clients every replica
	// must have seen real traffic.
	served := 0
	var total int64
	for i, svc := range svcs {
		rows := svc.Snapshots()[0].Rows
		total += rows
		if rows > 0 {
			served++
		}
		t.Logf("replica %d served %d rows", i, rows)
	}
	if served < 2 {
		t.Fatalf("traffic not spread: only %d of %d replicas served", served, replicas)
	}
	if total != clients*perClient {
		t.Fatalf("fleet served %d rows, want %d", total, clients*perClient)
	}
}

func TestRouterFailover(t *testing.T) {
	const replicas, d = 3, 16
	l, _ := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	in := randRows(1, d, 1)
	row := sliceRow(in, 0)
	if _, err := r.Predict("lin", row, time.Time{}); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	// Kill one replica: every subsequent request must still succeed via
	// failover onto the survivors.
	l.Server("worker", 0).Close()
	for k := 0; k < 30; k++ {
		if _, err := r.Predict("lin", row, time.Time{}); err != nil {
			t.Fatalf("predict %d after replica loss: %v", k, err)
		}
	}

	var st struct {
		Router RouterStats `json:"router"`
	}
	buf, err := r.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &st); err != nil {
		t.Fatal(err)
	}
	if st.Router.Failovers == 0 {
		t.Fatalf("no failovers recorded after killing a replica: %+v", st.Router)
	}
	if len(st.Router.Replicas) != replicas {
		t.Fatalf("replica stats: %+v", st.Router)
	}
}

func TestRouterApplicationErrorsDoNotFailover(t *testing.T) {
	const replicas, d = 2, 8
	l, svcs := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{DefaultDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Unknown model: a deterministic application error — retrying it on
	// another replica of the same fleet is pointless and must not happen.
	if _, err := r.Predict("nope", tensor.New(tensor.Float64, d), time.Time{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound through the router, got %v", err)
	}
	var st struct {
		Router RouterStats `json:"router"`
	}
	buf, _ := r.StatsJSON()
	json.Unmarshal(buf, &st)
	if st.Router.Failovers != 0 || st.Router.Retries != 0 {
		t.Fatalf("application error triggered failover: %+v", st.Router)
	}

	// Wrong feature width maps to ErrBadInput remotely.
	if _, err := r.Predict("lin", tensor.New(tensor.Float64, d+3), time.Time{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput through the router, got %v", err)
	}

	// A non-float tensor over the wire must fail the call cleanly — and
	// must not kill the replica (the follow-up predict proves it's alive).
	if _, err := r.Predict("lin", tensor.New(tensor.Int32, 2, d), time.Time{}); err == nil {
		t.Fatal("int32 batch accepted")
	}
	in := randRows(1, d, 3)
	if _, err := r.Predict("lin", sliceRow(in, 0), time.Time{}); err != nil {
		t.Fatalf("replica dead after malformed request: %v", err)
	}
	_ = svcs
}

func TestRouterModelsAndReady(t *testing.T) {
	const replicas, d = 2, 8
	l, _ := startReplicaFleet(t, replicas, d)
	r, err := NewRouter(l.Spec()["worker"], RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ms := r.Models()
	if len(ms) != 1 || ms[0].Name != "lin" {
		t.Fatalf("router models: %+v", ms)
	}
	if !r.Ready() {
		t.Fatal("router not ready with healthy replicas")
	}
}

func TestRouterAllReplicasDown(t *testing.T) {
	l, _ := startReplicaFleet(t, 2, 8)
	addrs := append([]string(nil), l.Spec()["worker"]...)
	r, err := NewRouter(addrs, RouterOptions{DefaultDeadline: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	l.Close()
	in := tensor.New(tensor.Float64, 8)
	if _, err := r.Predict("lin", in, time.Time{}); err == nil {
		t.Fatal("predict succeeded with every replica down")
	}
}
