package serving

import (
	"sort"
	"sync"
)

// Registry is the versioned model store: one active ModelVersion per model
// name, hot-swappable under traffic. Serving a new version atomically
// redirects new acquires to it and starts draining the old one; acquired
// refs pin their version until released, so a swap never tears weights out
// from under an in-flight batch and never drops queued requests.
type Registry struct {
	mu      sync.RWMutex
	active  map[string]*ModelVersion
	history map[string][]*ModelVersion
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		active:  make(map[string]*ModelVersion),
		history: make(map[string][]*ModelVersion),
	}
}

// Serve installs mv as its model's active version and returns the replaced
// version (nil on first load). The old version drains in the background:
// it stops taking new acquires immediately, and its Drained channel fires
// once in-flight work ends.
func (r *Registry) Serve(mv *ModelVersion) *ModelVersion {
	r.mu.Lock()
	old := r.active[mv.model]
	r.active[mv.model] = mv
	r.history[mv.model] = append(r.pruneLocked(mv.model), mv)
	r.mu.Unlock()
	if old != nil {
		old.startDrain()
	}
	return old
}

// pruneLocked drops fully drained ("unloaded") versions from a model's
// history so a long-running server swapping on every retrain doesn't pin
// every retired version's weights forever. Caller holds r.mu.
func (r *Registry) pruneLocked(model string) []*ModelVersion {
	kept := r.history[model][:0]
	for _, v := range r.history[model] {
		if v == r.active[model] || v.State() != "unloaded" {
			kept = append(kept, v)
		}
	}
	return kept
}

// Unload retires a model: no new acquires; returns the retired version
// (nil if the model was unknown) so callers can await Drained.
func (r *Registry) Unload(model string) *ModelVersion {
	r.mu.Lock()
	old := r.active[model]
	delete(r.active, model)
	if kept := r.pruneLocked(model); len(kept) > 0 {
		r.history[model] = kept
	} else {
		delete(r.history, model)
	}
	r.mu.Unlock()
	if old != nil {
		old.startDrain()
	}
	return old
}

// Active returns the current version without acquiring it (signature
// inspection, status pages). It may start draining at any moment; use
// Acquire for prediction.
func (r *Registry) Active(model string) *ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.active[model]
}

// Acquire pins the model's active version for one prediction; the release
// func must be called exactly once. A concurrent swap can retire the
// version between lookup and pin, so the lookup retries onto the fresh
// active version (bounded: each retry means another swap won the race).
func (r *Registry) Acquire(model string) (*ModelVersion, func(), error) {
	mv, err := r.acquireRef(model)
	if err != nil {
		return nil, nil, err
	}
	return mv, func() { mv.release() }, nil
}

// acquireRef is Acquire without the release closure: the caller must call
// mv.release() itself. The streaming fast path uses this form because the
// closure would be its only per-request allocation.
func (r *Registry) acquireRef(model string) (*ModelVersion, error) {
	for attempt := 0; attempt < 8; attempt++ {
		r.mu.RLock()
		mv := r.active[model]
		r.mu.RUnlock()
		if mv == nil {
			return nil, ErrNotFound
		}
		if mv.acquire() {
			return mv, nil
		}
	}
	return nil, ErrNotFound
}

// Models lists every model's active version status, sorted by name.
func (r *Registry) Models() []ModelStatus {
	r.mu.RLock()
	out := make([]ModelStatus, 0, len(r.active))
	for name, mv := range r.active {
		out = append(out, ModelStatus{
			Name:    name,
			Version: mv.version,
			State:   mv.State(),
			Ready:   true,
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Versions lists every version ever served for the model, oldest first —
// the retired ones report "draining"/"unloaded".
func (r *Registry) Versions(model string) []*ModelVersion {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*ModelVersion(nil), r.history[model]...)
}

// Ready reports whether at least one model is being served.
func (r *Registry) Ready() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.active) > 0
}
