package serving

import (
	"testing"
	"time"
)

// BenchmarkPredictSingle measures the unbatched serving path: one row, one
// session run, through admission and the batcher machinery.
func BenchmarkPredictSingle(b *testing.B) {
	svc := NewService(NewRegistry(), BatchOptions{MaxBatch: 1, DefaultDeadline: 10 * time.Second})
	defer svc.Close()
	mv, err := NewLinear("m", 1, linearWeights(256, 1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		b.Fatal(err)
	}
	row := sliceRow(randRows(1, 256, 1), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Predict("m", row, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictCoalesced measures the micro-batched path under
// concurrent callers — the configuration production traffic runs in.
func BenchmarkPredictCoalesced(b *testing.B) {
	svc := NewService(NewRegistry(), BatchOptions{
		MaxBatch: 32, Timeout: time.Millisecond, DefaultDeadline: 10 * time.Second,
	})
	defer svc.Close()
	mv, err := NewLinear("m", 1, linearWeights(256, 1))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.ServeModel(mv); err != nil {
		b.Fatal(err)
	}
	row := sliceRow(randRows(1, 256, 1), 0)
	b.SetParallelism(16) // 16x GOMAXPROCS concurrent callers feed the batcher
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := svc.Predict("m", row, time.Time{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(svc.Snapshots()[0].MeanBatch), "rows/batch")
}
