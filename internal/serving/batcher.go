package serving

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// BatchOptions tune one model's micro-batcher and admission control.
type BatchOptions struct {
	// MaxBatch is the flush threshold: a forming batch is dispatched as
	// soon as it holds this many rows (default 32). 1 disables coalescing.
	MaxBatch int
	// Timeout is the longest a first row waits for company before the
	// partial batch flushes anyway (default 2ms) — the latency the batcher
	// is allowed to spend buying arithmetic intensity.
	Timeout time.Duration
	// QueueDepth bounds the admission queue; enqueues beyond it are
	// rejected immediately with ErrOverloaded (default 1024).
	QueueDepth int
	// Runners is the number of concurrent batch executors (default 2):
	// while one batch runs the session, the next one forms.
	Runners int
	// DefaultDeadline applies to requests that carry none (default 1s).
	DefaultDeadline time.Duration
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.Runners <= 0 {
		o.Runners = 2
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Second
	}
	return o
}

type result struct {
	out *tensor.Tensor
	err error
}

type request struct {
	row      *tensor.Tensor // [features]
	deadline time.Time
	enq      time.Time   // when the row entered the admission queue
	resp     chan result // buffered(1): a late runner response never blocks
}

// reqPool recycles request envelopes (struct + its buffered channel).
// A request may be recycled only when no runner can still answer it: after
// its response was received, or when it was never enqueued. On a deadline
// expiry it is NOT recycled — the runner may yet send into resp — and is
// left for the GC, which is exactly the old per-request cost, paid only on
// the timeout edge.
var reqPool = sync.Pool{New: func() any {
	return &request{resp: make(chan result, 1)}
}}

// Batcher coalesces single-row predictions for one model into batched
// session runs. Admission is a bounded queue (reject > queue > time out):
// a full queue rejects instantly, queued rows carry deadlines, and expired
// rows are dropped at flush time instead of wasting a session run.
type Batcher struct {
	reg   *Registry
	model string
	opts  BatchOptions
	stats *Stats

	ch     chan *request
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewBatcher starts a batcher (and its runner goroutines) over the
// registry's named model.
func NewBatcher(reg *Registry, model string, opts BatchOptions) *Batcher {
	b := &Batcher{
		reg:   reg,
		model: model,
		opts:  opts.withDefaults(),
		stats: &Stats{},
		ch:    make(chan *request, opts.withDefaults().QueueDepth),
	}
	for i := 0; i < b.opts.Runners; i++ {
		b.wg.Add(1)
		go b.runner()
	}
	return b
}

// Stats returns the model's live counters.
func (b *Batcher) Stats() *Stats { return b.stats }

// Pending is the current admission-queue depth.
func (b *Batcher) Pending() int { return len(b.ch) }

// Close stops the runners after the queue drains; queued requests are
// still answered.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	close(b.ch)
	b.mu.Unlock()
	b.wg.Wait()
}

// Predict serves one row (shape [features]) through the batcher, blocking
// until the prediction, the deadline (zero = DefaultDeadline from now), or
// rejection. The outcome is counted exactly once, here at the resolution
// point: rejected at admission, expired at deadline, errored, or ok.
func (b *Batcher) Predict(row *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	if deadline.IsZero() {
		deadline = time.Now().Add(b.opts.DefaultDeadline)
	}
	r := reqPool.Get().(*request)
	r.row, r.deadline = row, deadline

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		r.row = nil
		reqPool.Put(r)
		return nil, ErrClosed
	}
	r.enq = time.Now()
	select {
	case b.ch <- r:
		b.mu.Unlock()
		mBatchQueueDepth.Add(1)
	default:
		b.mu.Unlock()
		b.stats.rejected.Add(1)
		mBatchRejected.Inc()
		r.row = nil
		reqPool.Put(r)
		return nil, ErrOverloaded
	}

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-r.resp:
		r.row = nil
		reqPool.Put(r) // answered: no runner holds it anymore
		switch {
		case res.err == nil:
			return res.out, nil
		case res.err == ErrDeadline:
			b.stats.expired.Add(1)
			mBatchExpired.Inc()
		default:
			b.stats.errs.Add(1)
			mBatchErrors.Inc()
		}
		return nil, res.err
	case <-timer.C:
		// The runner may still answer into the buffered chan; the compute
		// is wasted but nothing leaks or blocks. The request is NOT pooled.
		b.stats.expired.Add(1)
		mBatchExpired.Inc()
		return nil, ErrDeadline
	}
}

func (b *Batcher) runner() {
	defer b.wg.Done()
	var scratch []*request // reused batch backing across flushes
	for first := range b.ch {
		scratch = b.collect(scratch[:0], first)
		b.flush(scratch)
		for i := range scratch {
			scratch[i] = nil // drop request refs until the next batch
		}
	}
}

// collect forms one batch in the caller's scratch slice: it has the first
// row and keeps pulling until the batch is full or the coalescing window
// closes.
func (b *Batcher) collect(batch []*request, first *request) []*request {
	batch = append(batch, first)
	mBatchQueueDepth.Add(-1)
	if b.opts.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(b.opts.Timeout)
	defer timer.Stop()
	for len(batch) < b.opts.MaxBatch {
		select {
		case r, ok := <-b.ch:
			if !ok {
				return batch
			}
			batch = append(batch, r)
			mBatchQueueDepth.Add(-1)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// flush runs one coalesced batch: expired and malformed rows are answered
// individually (they never poison their batch-mates), the remainder is
// stacked along the leading dimension and run as a single session run.
func (b *Batcher) flush(batch []*request) {
	span := telemetry.StartRoot("batcher_flush").Arg("model", b.model)
	defer span.End()

	mv, release, err := b.reg.Acquire(b.model)
	if err != nil {
		for _, r := range batch {
			r.resp <- result{err: err}
		}
		return
	}
	defer release()

	sig := mv.Signature()
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		mBatchQueueWait.Observe(now.Sub(r.enq).Seconds())
		switch {
		case now.After(r.deadline):
			r.resp <- result{err: ErrDeadline}
		case r.row == nil || r.row.Rank() != 1 || r.row.Shape()[0] != sig.Features || !r.row.DType().IsFloat():
			r.resp <- result{err: fmt.Errorf("%w: want [%d] %v row, got %v %v",
				ErrBadInput, sig.Features, sig.DType, shapeOf(r.row), dtypeOf(r.row))}
		default:
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return
	}

	in := stackRows(live, sig)
	runSpan := span.Child("session_run").Arg("rows", strconv.Itoa(len(live)))
	out, err := mv.Predict(in)
	runSpan.End()
	if err != nil {
		for _, r := range live {
			r.resp <- result{err: err}
		}
		return
	}
	if out.Rank() < 1 || out.Shape()[0] != len(live) {
		err := fmt.Errorf("serving: model %s v%d returned %v for a %d-row batch",
			mv.model, mv.version, out.Shape(), len(live))
		for _, r := range live {
			r.resp <- result{err: err}
		}
		return
	}
	b.stats.recordBatch(len(live))
	mBatchBatches.Inc()
	mBatchRows.Add(int64(len(live)))
	mBatchSizeRows.Observe(float64(len(live)))
	for i, r := range live {
		r.resp <- result{out: sliceRow(out, i)}
	}
}

func dtypeOf(t *tensor.Tensor) tensor.DType {
	if t == nil {
		return tensor.Invalid
	}
	return t.DType()
}

// stackRows builds the [n, features] batch input from validated rows,
// converting each to the signature dtype (JSON traffic arrives float64
// regardless of the model's precision; the conversion is deterministic, so
// bitwise batched-vs-single parity holds).
func stackRows(live []*request, sig Signature) *tensor.Tensor {
	n, d := len(live), sig.Features
	switch sig.DType {
	case tensor.Float32:
		buf := make([]float32, n*d)
		for i, r := range live {
			dst := buf[i*d : (i+1)*d]
			if r.row.DType() == tensor.Float32 {
				copy(dst, r.row.F32())
			} else {
				for j, v := range r.row.F64() {
					dst[j] = float32(v)
				}
			}
		}
		return tensor.FromF32(tensor.Shape{n, d}, buf)
	default: // Float64 — signature dtypes are validated at load
		buf := make([]float64, n*d)
		for i, r := range live {
			dst := buf[i*d : (i+1)*d]
			if r.row.DType() == tensor.Float64 {
				copy(dst, r.row.F64())
			} else {
				for j, v := range r.row.F32() {
					dst[j] = float64(v)
				}
			}
		}
		return tensor.FromF64(tensor.Shape{n, d}, buf)
	}
}

// sliceRow extracts row i of a batched output (shape = out.Shape()[1:], so
// a [n] output yields scalars and [n, k] yields [k] vectors).
func sliceRow(out *tensor.Tensor, i int) *tensor.Tensor {
	rest := out.Shape()[1:].Clone()
	stride := rest.NumElements()
	lo, hi := i*stride, (i+1)*stride
	switch out.DType() {
	case tensor.Float32:
		return tensor.FromF32(rest, append([]float32(nil), out.F32()[lo:hi]...))
	default:
		return tensor.FromF64(rest, append([]float64(nil), out.F64()[lo:hi]...))
	}
}
