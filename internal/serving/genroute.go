package serving

import (
	"fmt"
	"sync/atomic"
	"time"

	"tfhpc/internal/serving/generate"
	"tfhpc/internal/telemetry"
)

// Generate implements Generator on the router: generation routes and fails
// over like predict. Failover is only safe before the sequence exists on a
// replica, so the router prefetches the first token — a replica that is
// down, or lacks the generate endpoint, fails there and the request moves
// on; once a token has arrived the sequence is pinned to its replica and
// later transport loss surfaces as an ErrClosed finish (tokens already
// streamed to the consumer cannot be unstreamed).
func (r *Router) Generate(model string, req generate.Request) (generate.Stream, error) {
	if sp := r.splitFor(model); sp != nil && sp.take() {
		model = sp.target
	}
	if req.Deadline.IsZero() {
		req.Deadline = time.Now().Add(r.opts.DefaultDeadline)
	}
	span := telemetry.StartRoot("router_generate").Arg("model", model)

	reps := r.snapshot()
	maxAttempts := r.opts.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(reps) {
		maxAttempts = len(reps)
	}
	tried := make(map[*replica]bool, maxAttempts)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rep := r.pick(reps, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempt > 0 {
			r.retries.Add(1)
			mRetries.Inc()
		}
		rep.outstanding.Add(1)
		mRouterOutstanding.Add(1)
		gs, err := OpenGenerateStream(rep.client, span.Context(), model, req)
		var first generate.Token
		var hasFirst bool
		if err == nil {
			// Prefetch: the open itself rarely fails (streams ride a lazy
			// mux), so the first token — or the finish — is the admission
			// answer that decides failover.
			first, hasFirst = gs.Next()
			if !hasFirst {
				if _, ferr := gs.Finish(); ferr != nil {
					err = ferr
				}
			}
		}
		if err != nil {
			rep.outstanding.Add(-1)
			mRouterOutstanding.Add(-1)
			lastErr = err
			if isNoStreamHandlerErr(err) || isTransportErr(err) {
				r.failovers.Add(1)
				mFailovers.Inc()
				r.bench(rep)
				span.Arg("benched", rep.addr)
				if time.Now().After(req.Deadline) {
					span.End()
					return nil, ErrDeadline
				}
				continue
			}
			span.End()
			return nil, err // deterministic application outcome: no failover
		}
		r.routed.Add(1)
		mRouted.Inc()
		return &routedGenStream{inner: gs, first: first, hasFirst: hasFirst, rep: rep, span: span}, nil
	}
	span.End()
	if lastErr == nil {
		lastErr = fmt.Errorf("serving: no replica available")
	}
	return nil, fmt.Errorf("serving: all replicas failed: %w", lastErr)
}

// routedGenStream hands the prefetched first token back, then relays, and
// releases the replica's outstanding slot exactly once when the sequence
// ends (or is cancelled).
type routedGenStream struct {
	inner    *GenerateStream
	first    generate.Token
	hasFirst bool
	rep      *replica
	span     *telemetry.Span
	released atomic.Bool
}

func (s *routedGenStream) Next() (generate.Token, bool) {
	if s.hasFirst {
		s.hasFirst = false
		return s.first, true
	}
	tok, ok := s.inner.Next()
	if !ok {
		s.release()
	}
	return tok, ok
}

func (s *routedGenStream) Finish() (generate.FinishReason, error) { return s.inner.Finish() }

func (s *routedGenStream) Cancel() {
	s.inner.Cancel()
	s.release()
}

func (s *routedGenStream) release() {
	if s.released.CompareAndSwap(false, true) {
		s.rep.outstanding.Add(-1)
		mRouterOutstanding.Add(-1)
		s.span.End()
	}
}

var _ generate.Stream = (*routedGenStream)(nil)
