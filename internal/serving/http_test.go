package serving

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newHTTPServer(t *testing.T, d int, opts BatchOptions) (*httptest.Server, *Service) {
	t.Helper()
	svc, _ := newLinearService(t, d, opts)
	ts := httptest.NewServer(NewHTTPHandler(svc))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postPredict(t *testing.T, url, model, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/v1/models/%s:predict", url, model),
		"application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func TestHTTPPredict(t *testing.T) {
	const d = 6
	ts, _ := newHTTPServer(t, d, BatchOptions{})

	code, out := postPredict(t, ts.URL, "lin", `{"instances": [[1,1,1,1,1,1],[0,0,0,0,0,0]]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	preds := out["predictions"].([]any)
	if len(preds) != 2 {
		t.Fatalf("want 2 predictions, got %v", preds)
	}
	if preds[1].(float64) != 0 {
		t.Fatalf("zero row must predict 0, got %v", preds[1])
	}

	// A flat instance list is one row.
	code, out = postPredict(t, ts.URL, "lin", `{"instances": [0,0,0,0,0,0]}`)
	if code != http.StatusOK || len(out["predictions"].([]any)) != 1 {
		t.Fatalf("flat instances: status %d %v", code, out)
	}
}

// TestHTTPBatchedMatchesSingle is the end-to-end bit-for-bit check the CI
// smoke replays over a real network socket: the same rows answered in one
// batched request and as concurrent single-row requests must be identical
// in their JSON rendering (same float64 bits → same marshalled text).
func TestHTTPBatchedMatchesSingle(t *testing.T) {
	const d, n = 12, 8
	ts, _ := newHTTPServer(t, d, BatchOptions{MaxBatch: n, Timeout: 5 * time.Millisecond})

	rows := make([][]float64, n)
	in := randRows(n, d, 99)
	for i := range rows {
		rows[i] = in.F64()[i*d : (i+1)*d]
	}
	body, _ := json.Marshal(map[string]any{"instances": rows})
	code, out := postPredict(t, ts.URL, "lin", string(body))
	if code != http.StatusOK {
		t.Fatalf("batched: status %d %v", code, out)
	}
	batched := out["predictions"].([]any)

	var wg sync.WaitGroup
	singles := make([]float64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{"instances": [][]float64{rows[i]}})
			resp, err := http.Post(fmt.Sprintf("%s/v1/models/lin:predict", ts.URL),
				"application/json", bytes.NewBuffer(b))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var o map[string][]float64
			if err := json.NewDecoder(resp.Body).Decode(&o); err != nil {
				errs[i] = err
				return
			}
			singles[i] = o["predictions"][0]
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("single %d: %v", i, errs[i])
		}
		if batched[i].(float64) != singles[i] {
			t.Fatalf("row %d: batched %v != single %v", i, batched[i], singles[i])
		}
	}
}

func TestHTTPStatusEndpoints(t *testing.T) {
	ts, _ := newHTTPServer(t, 4, BatchOptions{})

	for path, want := range map[string]int{
		"/healthz":        http.StatusOK,
		"/readyz":         http.StatusOK,
		"/statsz":         http.StatusOK,
		"/v1/models":      http.StatusOK,
		"/v1/models/lin":  http.StatusOK,
		"/v1/models/nope": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}

	var models struct{ Models []ModelStatus }
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&models)
	resp.Body.Close()
	if len(models.Models) != 1 || models.Models[0].Name != "lin" || !models.Models[0].Ready {
		t.Fatalf("models listing: %+v", models)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	ts, _ := newHTTPServer(t, 4, BatchOptions{})

	cases := []struct {
		model, body string
		want        int
	}{
		{"nope", `{"instances": [[1,2,3,4]]}`, http.StatusNotFound},
		{"lin", `{"instances": [[1,2,3]]}`, http.StatusBadRequest}, // wrong width
		{"lin", `{"instances": []}`, http.StatusBadRequest},
		{"lin", `not json`, http.StatusBadRequest},
		{"lin", `{}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, out := postPredict(t, ts.URL, c.model, c.body)
		if code != c.want {
			t.Errorf("%s %q: status %d, want %d (%v)", c.model, c.body, code, c.want, out)
		}
	}

	// Deadline header in the past → 504.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/models/lin:predict",
		bytes.NewBufferString(`{"instances": [[1,2,3,4]]}`))
	req.Header.Set("X-Deadline-Ms", "1")
	time.Sleep(5 * time.Millisecond)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("tiny deadline: status %d", resp.StatusCode)
	}

	// Stats reflect traffic.
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct{ Models []StatsSnapshot }
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if len(stats.Models) != 1 {
		t.Fatalf("statsz: %+v", stats)
	}
}

func TestHTTPNotReadyWithoutModels(t *testing.T) {
	svc := NewService(NewRegistry(), BatchOptions{})
	defer svc.Close()
	ts := httptest.NewServer(NewHTTPHandler(svc))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty service ready: status %d", resp.StatusCode)
	}
}
