package serving

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
)

// linearWeights builds a deterministic weight vector.
func linearWeights(d int, scale float64) *tensor.Tensor {
	w := make([]float64, d)
	for i := range w {
		w[i] = scale * (0.25 + float64(i%17)*0.125) // exact in binary
	}
	return tensor.FromF64(tensor.Shape{d}, w)
}

// randRows builds an [n, d] batch with deterministic values.
func randRows(n, d int, seed uint64) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	buf := make([]float64, n*d)
	for i := range buf {
		buf[i] = r.Float64()*2 - 1
	}
	return tensor.FromF64(tensor.Shape{n, d}, buf)
}

func TestLinearPredictMatchesDot(t *testing.T) {
	const d = 64
	w := linearWeights(d, 1)
	mv, err := NewLinear("lin", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	in := randRows(3, d, 7)
	out, err := mv.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{3}) {
		t.Fatalf("output shape %v, want [3]", out.Shape())
	}
	for i := 0; i < 3; i++ {
		want := 0.0
		for j := 0; j < d; j++ {
			want += in.F64()[i*d+j] * w.F64()[j]
		}
		if got := out.F64()[i]; math.IsNaN(got) || math.Abs(got-want) > 1e-9 {
			t.Fatalf("row %d: got %g want %g", i, got, want)
		}
	}
}

// TestBatchedBitIdentical is the batching contract: the same row produces
// bit-for-bit the same prediction alone and inside any batch.
func TestBatchedBitIdentical(t *testing.T) {
	const d, n = 96, 17
	mv, err := NewLinear("lin", 1, linearWeights(d, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	batch := randRows(n, d, 11)
	full, err := mv.Predict(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := sliceRow(batch, i)
		one, err := mv.Predict(tensor.FromF64(tensor.Shape{1, d}, append([]float64(nil), row.F64()...)))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := one.F64()[0], full.F64()[i]; got != want {
			t.Fatalf("row %d: single %x != batched %x", i, got, want)
		}
	}
}

func TestPredictValidation(t *testing.T) {
	mv, err := NewLinear("lin", 1, linearWeights(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mv.Predict(randRows(2, 9, 1)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("wrong width: want ErrBadInput, got %v", err)
	}
	if _, err := mv.Predict(tensor.FromF64(tensor.Shape{8}, make([]float64, 8))); !errors.Is(err, ErrBadInput) {
		t.Fatalf("rank 1: want ErrBadInput, got %v", err)
	}
	if _, err := mv.Predict(tensor.New(tensor.Float32, 2, 8)); !errors.Is(err, ErrBadInput) {
		t.Fatalf("dtype: want ErrBadInput, got %v", err)
	}
}

func TestLinearCheckpointRoundTrip(t *testing.T) {
	const d = 32
	w := linearWeights(d, 2)
	path := filepath.Join(t.TempDir(), "lin.ckpt")
	if err := SaveLinear(path, 7, w); err != nil {
		t.Fatal(err)
	}
	mv, err := LoadLinear("m", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Version() != 7 {
		t.Fatalf("version from step: got %d want 7", mv.Version())
	}
	if mv.Signature().Features != d {
		t.Fatalf("features: got %d want %d", mv.Signature().Features, d)
	}
	in := randRows(4, d, 3)
	want, err := NewLinearMust(t, w).Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := mv.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("loaded model disagrees with source weights")
	}
}

// NewLinearMust is a test helper.
func NewLinearMust(t *testing.T, w *tensor.Tensor) *ModelVersion {
	t.Helper()
	mv, err := NewLinear("ref", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	return mv
}

func TestLoadLinearRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A checkpoint with the wrong graph id must be refused loudly.
	foreign := filepath.Join(dir, "cg.ckpt")
	store := vars.NewStore()
	if err := store.Get("w").Assign(linearWeights(4, 1)); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.Capture("tfhpc/cg", 3, store).Save(foreign); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLinear("m", 0, foreign); err == nil {
		t.Fatal("foreign-graph checkpoint accepted")
	}
	if _, err := LoadLinear("m", 0, filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
