// Package generate is the sequence-serving engine: continuous batching for
// models that emit a stream of tokens per request, the autoregressive
// workload the one-shot micro-batcher cannot express.
//
// The pieces mirror what a production LLM server calls its scheduler:
//
//   - Model: a small autoregressive recurrence. Each decode step computes
//     one output token from the per-sequence state with a fixed reduction
//     order (gemm.Dot64), then folds the token back into the state. One
//     sequence's step touches only that sequence's state row, so decoding
//     many sequences "together" is bitwise identical to decoding each
//     alone — the property every correctness test in this package leans on.
//   - Engine: a single decode loop over a fixed set of slots. Each slot
//     holds one in-flight sequence's recurrent state in a preallocated,
//     reusable buffer (the KV-cache analogue). New requests are admitted
//     into free slots at every step boundary — continuous batching, not
//     flush-and-refill — and a finished or cancelled sequence's slot is
//     reclaimed the same way, without allocation.
//   - Admission: a bounded queue with the batcher's reject > queue > expire
//     precedence. A full queue rejects immediately (ErrOverloaded); a
//     queued request whose deadline passes before a slot frees expires
//     (ErrDeadline). The deadline bounds time-to-first-token; once a
//     sequence is decoding, it streams until EOS, its token budget, or
//     cancellation.
//   - Backpressure: each sequence streams through a bounded token window.
//     A consumer that stops reading stalls only its own slot — the decode
//     loop skips it that step and keeps the rest of the batch moving —
//     and consuming a token wakes the loop again.
//
// The steady-state decode path (step, emit, stall-skip, slot reclaim) is
// allocation-free; CI gates AllocsPerRun==0 on it.
package generate

import (
	"errors"
	"fmt"
	"math"

	"tfhpc/internal/gemm"
)

// Canonical admission/outcome errors. The serving layer maps them onto its
// own canonical set so HTTP codes and wire status bytes stay exact.
var (
	// ErrOverloaded: the admission queue is full — backpressure.
	ErrOverloaded = errors.New("generate: overloaded, request rejected")
	// ErrDeadline: the request's deadline passed before its first token.
	ErrDeadline = errors.New("generate: deadline exceeded before first token")
	// ErrClosed: the engine is shutting down.
	ErrClosed = errors.New("generate: engine closed")
	// ErrBadRequest: the request does not match the model.
	ErrBadRequest = errors.New("generate: bad request")
)

// FinishReason says why a sequence stopped emitting tokens.
type FinishReason string

const (
	// FinishEOS: the model emitted its stop condition (|token| < StopBelow).
	FinishEOS FinishReason = "eos"
	// FinishLength: the sequence hit its token budget.
	FinishLength FinishReason = "length"
	// FinishCancelled: the consumer cancelled mid-stream.
	FinishCancelled FinishReason = "cancelled"
	// FinishExpired: the deadline passed while the request was queued.
	FinishExpired FinishReason = "expired"
	// FinishClosed: the engine shut down under the sequence.
	FinishClosed FinishReason = "closed"
)

// Token is one emitted output. Step is the engine's global decode-step
// counter at emission time: two sequences whose token Steps interleave were
// decoded in the same in-flight batch, which is how tests assert that
// continuous admission is real rather than assumed.
type Token struct {
	Index int     `json:"index"`
	Value float64 `json:"value"`
	Step  uint64  `json:"step"`
}

// Stream is a consumer's view of one generating sequence: Next blocks for
// the next token and returns false once the sequence finished; Finish is
// valid after that and reports why (with the error for abnormal ends).
// Cancel may be called from any goroutine, at any time; the slot is
// reclaimed at the next decode step. Both a local Sequence and a remote
// relay implement it.
type Stream interface {
	Next() (Token, bool)
	Finish() (FinishReason, error)
	Cancel()
}

// Model is the synthetic autoregressive model: a trained weight vector w
// (d features) and a per-sequence state h of the same width. Each step
// emits y = h·w (fixed-order Dot64) and updates the state by shifting in
// tanh(y) — bounded, deterministic, and dependent on every prior token, so
// any cross-sequence state contamination changes emitted bits immediately.
type Model struct {
	name string
	w    []float64
}

// NewModel builds a model over a copy of the weight vector.
func NewModel(name string, w []float64) (*Model, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty model name", ErrBadRequest)
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("%w: empty weight vector", ErrBadRequest)
	}
	return &Model{name: name, w: append([]float64(nil), w...)}, nil
}

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Features is the state/prompt width d.
func (m *Model) Features() int { return len(m.w) }

// Step advances one sequence by one token, in place: the returned token is
// h·w in the kernel's fixed reduction order, and h shifts left with tanh of
// the token appended. Allocation-free.
func (m *Model) Step(h []float64) float64 {
	y := gemm.Dot64(h, m.w)
	copy(h, h[1:])
	h[len(h)-1] = math.Tanh(y)
	return y
}

// Reference decodes a prompt sequentially, alone — the ground truth every
// continuous-batched decode must match bit for bit.
func (m *Model) Reference(prompt []float64, maxTokens int, stopBelow float64) ([]float64, FinishReason) {
	h := append([]float64(nil), prompt...)
	out := make([]float64, 0, maxTokens)
	for len(out) < maxTokens {
		y := m.Step(h)
		out = append(out, y)
		if stopBelow > 0 && math.Abs(y) < stopBelow {
			return out, FinishEOS
		}
	}
	return out, FinishLength
}
