package generate

import (
	"math/rand"
	"testing"
	"time"
)

// BenchmarkGenerateDecode drives the steady-state decode hot path: a
// saturated batch with consumers keeping every window open, one token
// consumed per iteration. CI runs it with -benchmem and gates allocs/op at
// exactly zero (scripts/alloc_baseline.json).
func BenchmarkGenerateDecode(b *testing.B) {
	const d = 64
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.1 + 0.05*float64(i%7)
	}
	m, err := NewModel("bench", w)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(m, Options{
		MaxSlots:        4,
		TokenWindow:     512,
		MaxTokens:       1 << 30,
		DefaultDeadline: time.Hour,
	})
	defer eng.Close()
	rng := rand.New(rand.NewSource(7))
	streams := make([]*Sequence, 4)
	for i := range streams {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()*2 - 1
		}
		s, err := eng.Submit(Request{Prompt: p, MaxTokens: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = s
	}
	// Warm every window so the measured loop is pure steady state.
	for i := 0; i < 256; i++ {
		for _, s := range streams {
			if _, ok := s.Next(); !ok {
				b.Fatal("sequence ended during warmup")
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := streams[i%len(streams)].Next(); !ok {
			b.Fatal("sequence ended mid-benchmark")
		}
	}
	b.StopTimer()
	for _, s := range streams {
		s.Cancel()
	}
}
