package generate

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testModel(t *testing.T, d int) *Model {
	t.Helper()
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.1 + 0.05*float64(i%7) // deliberately non-trivial, bounded
	}
	m, err := NewModel("test", w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randPrompt(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64()*2 - 1
	}
	return p
}

func drain(s Stream) []float64 {
	var out []float64
	for {
		tok, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, tok.Value)
	}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Continuous-batched decode must be bit-identical to sequential
// single-request decode, for every sequence in a concurrent batch.
func TestContinuousMatchesSequentialBitwise(t *testing.T) {
	const d = 24
	m := testModel(t, d)
	eng := NewEngine(m, Options{MaxSlots: 4, QueueDepth: 64, DefaultDeadline: 10 * time.Second})
	defer eng.Close()

	rng := rand.New(rand.NewSource(1))
	const n = 16
	prompts := make([][]float64, n)
	lens := make([]int, n)
	for i := range prompts {
		prompts[i] = randPrompt(rng, d)
		lens[i] = 5 + rng.Intn(80)
	}
	var wg sync.WaitGroup
	got := make([][]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := eng.Submit(Request{Prompt: prompts[i], MaxTokens: lens[i]})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			got[i] = drain(s)
			if reason, err := s.Finish(); reason != FinishLength || err != nil {
				t.Errorf("seq %d finished (%s, %v), want (length, nil)", i, reason, err)
			}
		}(i)
	}
	wg.Wait()
	for i := range prompts {
		want, _ := m.Reference(prompts[i], lens[i], 0)
		if !bitsEqual(got[i], want) {
			t.Fatalf("seq %d: continuous-batched decode diverged from sequential reference", i)
		}
	}
}

// The scheduler must admit a request into the in-flight batch mid-decode:
// sequence B, submitted while A is still emitting, gets tokens at decode
// steps strictly inside A's span — asserted on the Token.Step counter, not
// assumed from the design.
func TestRequestJoinsInFlightBatchMidDecode(t *testing.T) {
	const d = 16
	m := testModel(t, d)
	// A small token window lets A stall while we run B, guaranteeing A is
	// still in its slot (mid-decode) for B's whole lifetime.
	eng := NewEngine(m, Options{MaxSlots: 4, TokenWindow: 4, DefaultDeadline: 10 * time.Second})
	defer eng.Close()

	rng := rand.New(rand.NewSource(2))
	promptA, promptB := randPrompt(rng, d), randPrompt(rng, d)

	a, err := eng.Submit(Request{Prompt: promptA, MaxTokens: 300})
	if err != nil {
		t.Fatal(err)
	}
	firstA, ok := a.Next()
	if !ok {
		t.Fatal("A produced no token")
	}
	// A is now decoding (and will stall on its window). B joins.
	b, err := eng.Submit(Request{Prompt: promptB, MaxTokens: 40})
	if err != nil {
		t.Fatal(err)
	}
	var bTokens []Token
	for {
		tok, ok := b.Next()
		if !ok {
			break
		}
		bTokens = append(bTokens, tok)
	}
	// Now drain A; its remaining tokens carry steps after B's.
	aTokens := []Token{firstA}
	for {
		tok, ok := a.Next()
		if !ok {
			break
		}
		aTokens = append(aTokens, tok)
	}

	if bTokens[0].Step <= firstA.Step {
		t.Fatalf("B's first token step %d not after A started (step %d)", bTokens[0].Step, firstA.Step)
	}
	lastA := aTokens[len(aTokens)-1]
	if bTokens[0].Step >= lastA.Step {
		t.Fatalf("B (first step %d) never joined A's in-flight decode (A last step %d)", bTokens[0].Step, lastA.Step)
	}
	// Joining mid-batch must not perturb either sequence's bits.
	val := func(ts []Token) []float64 {
		out := make([]float64, len(ts))
		for i, tok := range ts {
			out[i] = tok.Value
		}
		return out
	}
	wantA, _ := m.Reference(promptA, 300, 0)
	wantB, _ := m.Reference(promptB, 40, 0)
	if !bitsEqual(val(aTokens), wantA) || !bitsEqual(val(bTokens), wantB) {
		t.Fatal("mid-decode join changed emitted bits")
	}
}

// A slow consumer stalls only its own slot: the rest of the batch keeps
// decoding, and the stalled sequence resumes when its consumer returns.
func TestBackpressureStallsOnlyTheSlowConsumer(t *testing.T) {
	const d = 8
	m := testModel(t, d)
	eng := NewEngine(m, Options{MaxSlots: 2, TokenWindow: 2, DefaultDeadline: 10 * time.Second})
	defer eng.Close()

	rng := rand.New(rand.NewSource(3))
	slowPrompt, fastPrompt := randPrompt(rng, d), randPrompt(rng, d)
	slow, err := eng.Submit(Request{Prompt: slowPrompt, MaxTokens: 50})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := eng.Submit(Request{Prompt: fastPrompt, MaxTokens: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Never touch `slow` yet: it may emit at most TokenWindow tokens.
	gotFast := drain(fast)
	wantFast, _ := m.Reference(fastPrompt, 50, 0)
	if !bitsEqual(gotFast, wantFast) {
		t.Fatal("fast sequence diverged while another slot was stalled")
	}
	if st := eng.Stats(); st.Stalls == 0 {
		t.Fatal("expected the stalled slot to be counted")
	}
	// The stalled sequence resumes and completes bit-exact.
	gotSlow := drain(slow)
	wantSlow, _ := m.Reference(slowPrompt, 50, 0)
	if !bitsEqual(gotSlow, wantSlow) {
		t.Fatal("stalled sequence diverged after resuming")
	}
}

// Admission follows the batcher contract: full queue rejects, queued
// requests expire at their deadline, and both outcomes are counted.
func TestAdmissionRejectAndExpire(t *testing.T) {
	const d = 8
	m := testModel(t, d)
	eng := NewEngine(m, Options{MaxSlots: 1, QueueDepth: 1, TokenWindow: 1, DefaultDeadline: 10 * time.Second})
	defer eng.Close()

	rng := rand.New(rand.NewSource(4))
	// Occupy the only slot with a sequence nobody consumes.
	blocker, err := eng.Submit(Request{Prompt: randPrompt(rng, d), MaxTokens: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker to occupy the slot", func() bool { return eng.SlotsInUse() == 1 })

	// Fill the queue, then overflow it.
	queued, err := eng.Submit(Request{Prompt: randPrompt(rng, d), MaxTokens: 5,
		Deadline: time.Now().Add(50 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(Request{Prompt: randPrompt(rng, d), MaxTokens: 5}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow submit: got %v, want ErrOverloaded", err)
	}

	// Let the queued request's deadline lapse, then free the slot: it must
	// expire rather than decode.
	time.Sleep(80 * time.Millisecond)
	blocker.Cancel()
	if got := drain(queued); len(got) != 0 {
		t.Fatalf("expired request decoded %d tokens", len(got))
	}
	reason, ferr := queued.Finish()
	if reason != FinishExpired || !errors.Is(ferr, ErrDeadline) {
		t.Fatalf("queued request finished (%s, %v), want (expired, ErrDeadline)", reason, ferr)
	}
	drain(blocker)
	st := eng.Stats()
	if st.Rejected != 1 || st.Expired != 1 || st.Cancelled != 1 {
		t.Fatalf("counters rejected=%d expired=%d cancelled=%d, want 1/1/1", st.Rejected, st.Expired, st.Cancelled)
	}
	// A prompt of the wrong width is a bad request, not a crash.
	if _, err := eng.Submit(Request{Prompt: make([]float64, d+1)}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("bad prompt: got %v, want ErrBadRequest", err)
	}
}

// Zero weights drive the first token to exactly 0, so StopBelow fires: the
// EOS path frees the slot after one token.
func TestStopConditionEOS(t *testing.T) {
	m, err := NewModel("eos", make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(m, Options{DefaultDeadline: 10 * time.Second})
	defer eng.Close()
	s, err := eng.Submit(Request{Prompt: make([]float64, 8), MaxTokens: 100, StopBelow: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	got := drain(s)
	reason, ferr := s.Finish()
	if len(got) != 1 || got[0] != 0 || reason != FinishEOS || ferr != nil {
		t.Fatalf("eos decode: %d tokens, (%s, %v)", len(got), reason, ferr)
	}
	waitFor(t, "slot reclaim", func() bool { return eng.SlotsInUse() == 0 })
}

// Close answers everything: in-flight and queued sequences finish with
// FinishClosed/ErrClosed, later submits are refused, nothing hangs.
func TestCloseAnswersInFlightAndQueued(t *testing.T) {
	const d = 8
	m := testModel(t, d)
	eng := NewEngine(m, Options{MaxSlots: 1, QueueDepth: 4, TokenWindow: 1, DefaultDeadline: 10 * time.Second})
	rng := rand.New(rand.NewSource(5))
	var seqs []*Sequence
	for i := 0; i < 3; i++ {
		s, err := eng.Submit(Request{Prompt: randPrompt(rng, d), MaxTokens: 1000})
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	eng.Close()
	for i, s := range seqs {
		drain(s)
		if reason, err := s.Finish(); reason != FinishClosed || !errors.Is(err, ErrClosed) {
			t.Fatalf("seq %d after close: (%s, %v)", i, reason, err)
		}
	}
	if _, err := eng.Submit(Request{Prompt: randPrompt(rng, d)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// Property test (run under -race in CI): random admit/cancel/EOS schedules
// never leak slots, never cross-contaminate per-sequence state (every
// consumed stream is a bit-exact prefix of its sequential reference), and
// the engine keeps serving afterwards.
func TestRandomScheduleNeverLeaksOrContaminates(t *testing.T) {
	const d = 12
	m := testModel(t, d)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine(m, Options{MaxSlots: 3, QueueDepth: 128, TokenWindow: 4, DefaultDeadline: 10 * time.Second})
		const n = 32
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			prompt := randPrompt(rng, d)
			maxTok := 1 + rng.Intn(50)
			stopBelow := 0.0
			if rng.Intn(4) == 0 {
				stopBelow = 0.05 // sometimes EOS fires before the budget
			}
			cancelAfter := -1
			if rng.Intn(3) == 0 {
				cancelAfter = rng.Intn(maxTok)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := eng.Submit(Request{Prompt: prompt, MaxTokens: maxTok, StopBelow: stopBelow})
				if err != nil {
					t.Errorf("seed %d: submit: %v", seed, err)
					return
				}
				var got []float64
				for {
					tok, ok := s.Next()
					if !ok {
						break
					}
					got = append(got, tok.Value)
					if cancelAfter >= 0 && len(got) > cancelAfter {
						s.Cancel()
					}
				}
				want, wantReason := m.Reference(prompt, maxTok, stopBelow)
				if len(got) > len(want) {
					t.Errorf("seed %d: decoded %d tokens past the reference's %d", seed, len(got), len(want))
					return
				}
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Errorf("seed %d: token %d bits diverged (state cross-contamination)", seed, i)
						return
					}
				}
				if cancelAfter < 0 {
					reason, ferr := s.Finish()
					if len(got) != len(want) || reason != wantReason || ferr != nil {
						t.Errorf("seed %d: finished %d/%d tokens (%s, %v), want (%s, nil)",
							seed, len(got), len(want), reason, ferr, wantReason)
					}
				}
			}()
		}
		wg.Wait()
		waitFor(t, "all slots reclaimed", func() bool { return eng.SlotsInUse() == 0 })
		st := eng.Stats()
		if st.SlotLeaks != 0 {
			t.Fatalf("seed %d: %d slot leaks", seed, st.SlotLeaks)
		}
		if st.Queued != 0 {
			t.Fatalf("seed %d: %d requests stuck in queue", seed, st.Queued)
		}
		// Slots reclaimed by cancellation must be reusable, not poisoned.
		prompt := randPrompt(rng, d)
		s, err := eng.Submit(Request{Prompt: prompt, MaxTokens: 10})
		if err != nil {
			t.Fatalf("seed %d: post-schedule submit: %v", seed, err)
		}
		want, _ := m.Reference(prompt, 10, 0)
		if got := drain(s); !bitsEqual(got, want) {
			t.Fatalf("seed %d: reclaimed slot produced wrong bits", seed)
		}
		eng.Close()
	}
}

// The steady-state token hot path — step, emit, window bookkeeping, consume
// — allocates nothing. CI additionally gates BenchmarkGenerateDecode's
// allocs/op at exactly zero.
func TestSteadyStateDecodeAllocsZero(t *testing.T) {
	const d = 32
	m := testModel(t, d)
	eng := NewEngine(m, Options{MaxSlots: 2, TokenWindow: 256, MaxTokens: 1 << 30, DefaultDeadline: time.Hour})
	defer eng.Close()
	rng := rand.New(rand.NewSource(6))
	s, err := eng.Submit(Request{Prompt: randPrompt(rng, d), MaxTokens: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the window and the runtime's channel/timer caches.
	for i := 0; i < 1024; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("sequence ended during warmup")
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatal("sequence ended mid-measurement")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state decode allocates: %v allocs/run", avg)
	}
	s.Cancel()
	drain(s)
}
