package generate

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Options tune one engine.
type Options struct {
	// MaxSlots is the in-flight batch width: the number of sequences
	// decoding concurrently, and the number of preallocated state buffers
	// (default 8).
	MaxSlots int
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrOverloaded (default 64).
	QueueDepth int
	// TokenWindow is the per-sequence streaming buffer. A consumer that
	// falls this many tokens behind stalls its own slot until it reads
	// again (default 32).
	TokenWindow int
	// MaxTokens caps any sequence's token budget; requests asking for more
	// (or for nothing) are clamped to it (default 4096).
	MaxTokens int
	// DefaultDeadline bounds queue wait for requests carrying no deadline:
	// a request not decoding by then expires (default 1s).
	DefaultDeadline time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSlots <= 0 {
		o.MaxSlots = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TokenWindow <= 0 {
		o.TokenWindow = 32
	}
	if o.MaxTokens <= 0 {
		o.MaxTokens = 4096
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Second
	}
	return o
}

// Request asks for one generated sequence.
type Request struct {
	// Prompt initializes the sequence state; its length must equal the
	// model's feature width.
	Prompt []float64
	// MaxTokens is the token budget; <=0 takes the engine cap.
	MaxTokens int
	// StopBelow, when positive, is the EOS condition: generation stops at
	// the first token with |token| < StopBelow.
	StopBelow float64
	// Deadline bounds time-to-first-token (admission); zero applies the
	// engine default. It does not bound the stream once decoding starts.
	Deadline time.Time
}

// Sequence is one admitted request's stream handle. It implements Stream.
// One consumer at a time; Cancel is safe from any goroutine.
type Sequence struct {
	eng       *Engine
	tokens    chan Token
	cancelled atomic.Bool

	// Request, frozen at Submit.
	prompt    []float64
	maxTokens int
	stopBelow float64
	deadline  time.Time
	enq       time.Time

	// Decode-loop-owned.
	emitted  int
	lastEmit time.Time

	// Written by the loop before tokens closes; readable after Next
	// returns false (the channel close orders the write).
	finish FinishReason
	err    error
}

// Next blocks for the next token; false means the sequence finished.
// Consuming a token opens window room, so it also wakes a stalled slot.
func (s *Sequence) Next() (Token, bool) {
	t, ok := <-s.tokens
	if ok {
		s.eng.wakeLoop()
	}
	return t, ok
}

// Finish reports why the sequence ended; valid once Next returned false.
func (s *Sequence) Finish() (FinishReason, error) { return s.finish, s.err }

// Cancel asks the engine to stop the sequence; its slot frees at the next
// decode step (even if the consumer never reads another token).
func (s *Sequence) Cancel() {
	if s.cancelled.CompareAndSwap(false, true) {
		s.eng.wakeLoop()
	}
}

// slot is one reusable per-sequence state buffer.
type slot struct {
	h   []float64
	seq *Sequence
}

// Stats is an engine's counter snapshot (the /statsz view; /metricz carries
// the process-global sums).
type Stats struct {
	Model     string `json:"model"`
	Slots     int    `json:"slots"`
	Active    int64  `json:"active"`
	Queued    int64  `json:"queued"`
	Sequences int64  `json:"sequences"`
	Tokens    int64  `json:"tokens"`
	Rejected  int64  `json:"rejected"`
	Expired   int64  `json:"expired"`
	Cancelled int64  `json:"cancelled"`
	Stalls    int64  `json:"stalls"`
	// SlotLeaks counts free-list/active bookkeeping mismatches. It is an
	// invariant: anything other than exactly zero is an engine bug.
	SlotLeaks int64  `json:"slot_leaks"`
	Steps     uint64 `json:"steps"`
}

// Engine runs the continuous-batching decode loop for one model.
type Engine struct {
	model *Model
	opts  Options

	admit chan *Sequence
	wake  chan struct{}
	quit  chan struct{}
	done  chan struct{}

	closeMu sync.RWMutex
	closed  bool

	// Decode-loop-owned.
	slots  []slot
	free   []int
	active int

	steps      atomic.Uint64
	gActive    atomic.Int64
	gQueued    atomic.Int64
	cSequences atomic.Int64
	cTokens    atomic.Int64
	cRejected  atomic.Int64
	cExpired   atomic.Int64
	cCancelled atomic.Int64
	cStalls    atomic.Int64
	cLeaks     atomic.Int64
}

// NewEngine starts the decode loop over MaxSlots preallocated state
// buffers. Close releases it.
func NewEngine(m *Model, opts Options) *Engine {
	opts = opts.withDefaults()
	e := &Engine{
		model: m,
		opts:  opts,
		admit: make(chan *Sequence, opts.QueueDepth),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		slots: make([]slot, opts.MaxSlots),
		free:  make([]int, 0, opts.MaxSlots),
	}
	for i := range e.slots {
		e.slots[i].h = make([]float64, m.Features())
		e.free = append(e.free, i)
	}
	go e.run()
	return e
}

// Model returns the served model.
func (e *Engine) Model() *Model { return e.model }

// Steps returns the global decode-step counter.
func (e *Engine) Steps() uint64 { return e.steps.Load() }

// SlotsInUse returns the number of occupied slots.
func (e *Engine) SlotsInUse() int64 { return e.gActive.Load() }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Model:     e.model.Name(),
		Slots:     e.opts.MaxSlots,
		Active:    e.gActive.Load(),
		Queued:    e.gQueued.Load(),
		Sequences: e.cSequences.Load(),
		Tokens:    e.cTokens.Load(),
		Rejected:  e.cRejected.Load(),
		Expired:   e.cExpired.Load(),
		Cancelled: e.cCancelled.Load(),
		Stalls:    e.cStalls.Load(),
		SlotLeaks: e.cLeaks.Load(),
		Steps:     e.steps.Load(),
	}
}

// Submit validates and enqueues one request: reject (full queue) beats
// queue beats expire, exactly like the predict batcher. The returned
// Sequence streams tokens as the decode loop reaches it.
func (e *Engine) Submit(req Request) (*Sequence, error) {
	if len(req.Prompt) != e.model.Features() {
		return nil, fmt.Errorf("%w: prompt has %d features, model %q wants %d",
			ErrBadRequest, len(req.Prompt), e.model.Name(), e.model.Features())
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 || maxTokens > e.opts.MaxTokens {
		maxTokens = e.opts.MaxTokens
	}
	deadline := req.Deadline
	if deadline.IsZero() {
		deadline = time.Now().Add(e.opts.DefaultDeadline)
	}
	s := &Sequence{
		eng:       e,
		tokens:    make(chan Token, e.opts.TokenWindow),
		prompt:    append([]float64(nil), req.Prompt...),
		maxTokens: maxTokens,
		stopBelow: req.StopBelow,
		deadline:  deadline,
		enq:       time.Now(),
	}
	// The read lock orders Submit against Close: once Close flips the flag
	// no new sequence can enter the queue, so the post-loop drain is
	// complete and every admitted sequence is always answered.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	select {
	case e.admit <- s:
		e.cSequences.Add(1)
		e.gQueued.Add(1)
		mSequences.Inc()
		mQueueDepth.Add(1)
		e.wakeLoop()
		return s, nil
	default:
		e.cRejected.Add(1)
		mRejected.Inc()
		return nil, ErrOverloaded
	}
}

// Close stops the decode loop; in-flight and queued sequences finish with
// FinishClosed/ErrClosed. Idempotent.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.closeMu.Unlock()
	close(e.quit)
	<-e.done
	// The loop is gone and Submit is fenced off: drain the queue.
	for {
		select {
		case s := <-e.admit:
			e.noteDequeued()
			e.finishSeq(s, FinishClosed, ErrClosed)
		default:
			return
		}
	}
}

// wakeLoop nudges the decode loop without blocking or allocating.
func (e *Engine) wakeLoop() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// run is the decode loop: admit into free slots, step the batch, block only
// when there is genuinely nothing to do (no active unstalled slot, nothing
// admissible).
func (e *Engine) run() {
	defer close(e.done)
	for {
		select {
		case <-e.quit:
			e.finishActive()
			return
		default:
		}
		e.admitReady()
		progressed := false
		if e.active > 0 {
			progressed = e.stepOnce()
		}
		if progressed {
			continue
		}
		// Idle, or every active slot stalled on its token window. Receiving
		// from admit is only armed while a slot is free — a queued request
		// must keep its queue position (and its expiry answer) rather than
		// being pulled out with nowhere to go.
		admitCh := e.admit
		if len(e.free) == 0 {
			admitCh = nil
		}
		select {
		case <-e.quit:
			e.finishActive()
			return
		case <-e.wake:
		case s := <-admitCh:
			e.noteDequeued()
			e.place(s)
		}
	}
}

// admitReady moves queued requests into free slots — called at every step
// boundary, which is what makes the batching continuous.
func (e *Engine) admitReady() {
	for len(e.free) > 0 {
		select {
		case s := <-e.admit:
			e.noteDequeued()
			e.place(s)
		default:
			return
		}
	}
}

func (e *Engine) noteDequeued() {
	e.gQueued.Add(-1)
	mQueueDepth.Add(-1)
}

// place assigns a dequeued request to a free slot — unless it was cancelled
// or expired while queued, which answers it without consuming one.
func (e *Engine) place(s *Sequence) {
	if s.cancelled.Load() {
		e.cCancelled.Add(1)
		mCancelled.Inc()
		e.finishSeq(s, FinishCancelled, nil)
		return
	}
	if time.Now().After(s.deadline) {
		e.cExpired.Add(1)
		mExpired.Inc()
		e.finishSeq(s, FinishExpired, ErrDeadline)
		return
	}
	i := e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	sl := &e.slots[i]
	copy(sl.h, s.prompt)
	sl.seq = s
	e.active++
	e.gActive.Add(1)
	mInflight.Add(1)
	mSlotsInUse.Add(1)
}

// stepOnce advances every active, unstalled slot by one token. Returns
// whether anything moved. Allocation-free.
func (e *Engine) stepOnce() bool {
	step := e.steps.Add(1)
	progressed := false
	occupied := 0
	for i := range e.slots {
		sl := &e.slots[i]
		s := sl.seq
		if s == nil {
			continue
		}
		occupied++
		if s.cancelled.Load() {
			// Checked before the stall skip: a cancelled consumer has
			// stopped reading, and its full window must not pin the slot.
			e.cCancelled.Add(1)
			mCancelled.Inc()
			e.freeSlot(i, FinishCancelled, nil)
			progressed = true
			continue
		}
		if len(s.tokens) == cap(s.tokens) {
			e.cStalls.Add(1)
			mStalls.Inc()
			continue
		}
		y := e.model.Step(sl.h)
		s.tokens <- Token{Index: s.emitted, Value: y, Step: step}
		now := time.Now()
		if s.emitted == 0 {
			mTTFT.ObserveSince(s.enq)
		} else {
			mInterToken.ObserveSince(s.lastEmit)
		}
		s.lastEmit = now
		s.emitted++
		e.cTokens.Add(1)
		mTokens.Inc()
		progressed = true
		switch {
		case s.stopBelow > 0 && math.Abs(y) < s.stopBelow:
			e.freeSlot(i, FinishEOS, nil)
		case s.emitted >= s.maxTokens:
			e.freeSlot(i, FinishLength, nil)
		}
	}
	if progressed {
		mStepSlots.Observe(float64(occupied))
	}
	return progressed
}

// freeSlot reclaims slot i onto the free list (no allocation — the list's
// backing array is preallocated at MaxSlots) and finishes its sequence.
// The bookkeeping invariant is self-checked; a violation is counted on the
// slot-leak counter CI asserts to be exactly zero.
func (e *Engine) freeSlot(i int, reason FinishReason, err error) {
	sl := &e.slots[i]
	s := sl.seq
	sl.seq = nil
	e.free = append(e.free, i)
	e.active--
	e.gActive.Add(-1)
	mInflight.Add(-1)
	mSlotsInUse.Add(-1)
	if e.active != e.opts.MaxSlots-len(e.free) || e.active < 0 {
		e.cLeaks.Add(1)
		mSlotLeaks.Inc()
	}
	e.finishSeq(s, reason, err)
}

// finishSeq publishes a sequence's outcome: the channel close orders the
// finish/err writes for the consumer.
func (e *Engine) finishSeq(s *Sequence, reason FinishReason, err error) {
	s.finish = reason
	s.err = err
	close(s.tokens)
}

// finishActive ends every in-flight sequence at shutdown.
func (e *Engine) finishActive() {
	for i := range e.slots {
		if e.slots[i].seq != nil {
			e.freeSlot(i, FinishClosed, ErrClosed)
		}
	}
}
