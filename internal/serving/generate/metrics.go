package generate

import "tfhpc/internal/telemetry"

// Registry handles for the generative engine: process-global sums across
// every engine in the process, backing /metricz. Every hot-path update is a
// single atomic op, so the decode loop's AllocsPerRun==0 gate holds with
// metrics enabled. The per-engine Stats atomics stay the /statsz view.
var (
	mSequences = telemetry.NewCounter("tfhpc_generate_sequences_total",
		"Generation requests admitted into the queue.")
	mTokens = telemetry.NewCounter("tfhpc_generate_tokens_total",
		"Tokens emitted across all sequences.")
	mRejected = telemetry.NewCounter("tfhpc_generate_rejected_total",
		"Generation requests rejected at admission (queue full).")
	mExpired = telemetry.NewCounter("tfhpc_generate_expired_total",
		"Queued requests whose deadline passed before a slot freed.")
	mCancelled = telemetry.NewCounter("tfhpc_generate_cancelled_total",
		"Sequences cancelled by their consumer (queued or mid-decode).")
	mStalls = telemetry.NewCounter("tfhpc_generate_stalls_total",
		"Decode steps a slot sat out because its consumer's token window was full.")
	mSlotLeaks = telemetry.NewCounter("tfhpc_generate_slot_leaks_total",
		"Slot bookkeeping violations. Exactly zero, always; CI asserts it.")
	mInflight = telemetry.NewGauge("tfhpc_generate_inflight",
		"Sequences decoding right now (all engines).")
	mSlotsInUse = telemetry.NewGauge("tfhpc_generate_slots_in_use",
		"Occupied decode slots right now (all engines).")
	mQueueDepth = telemetry.NewGauge("tfhpc_generate_queue_depth",
		"Requests waiting in admission queues right now.")
	mTTFT = telemetry.NewHistogram("tfhpc_generate_ttft_seconds",
		"Time from admission to a sequence's first token.", telemetry.DurationBuckets)
	mInterToken = telemetry.NewHistogram("tfhpc_generate_intertoken_seconds",
		"Gap between consecutive tokens of one sequence.", telemetry.DurationBuckets)
	mStepSlots = telemetry.NewHistogram("tfhpc_generate_step_slots",
		"Occupied slots per productive decode step (batch density).",
		[]float64{1, 2, 4, 8, 16, 32, 64})
)
