package serving

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/serving/generate"
	"tfhpc/internal/telemetry"
)

// Streaming generation: one rpc stream carries one generated sequence. The
// stream tier's credit window is the transport-level flow control; the
// engine's per-sequence token window is the application-level one — a slow
// remote consumer stalls only its own decode slot, exactly like a local one.
//
// Request frame (client → server, exactly one):
//
//	uvarint budget µs (0 = none) | uvarint trace | uvarint span |
//	uvarint maxTokens | uvarint stopBelowBits (Float64bits) |
//	uvarint len(model) | model | prompt (8-byte LE float64 each)
//
// budget bounds time-to-first-token (the admission deadline); trace/span are
// the caller's telemetry ids as in streaming predict. Any later frame from
// the client — or tearing the stream down (reset) — cancels the sequence.
//
// Response frames (server → client):
//
//	0x00 | uvarint index | uvarint step | 8-byte LE float64   one token
//	0x01 | finish reason text                                 clean finish
//	0x02 | status byte | error text                           error finish
//
// The finish frame, not the stream close, carries the outcome; a stream that
// ends without one is a transport loss (ErrClosed), which is what lets the
// router distinguish "replica died" from "sequence finished".
const GenerateStreamMethod = "ServingGenerateStream"

// Generate stream frame kinds.
const (
	gfToken = 0x00
	gfDone  = 0x01
	gfError = 0x02
)

// serveGenerateStream serves one generated sequence over one rpc stream.
func serveGenerateStream(g Generator, st *rpc.Stream) error {
	buf, err := st.Recv(nil)
	if err != nil {
		return err
	}
	req, model, tsc, perr := parseGenerateReq(buf)
	if perr != nil {
		return perr // protocol violation: reset the stream
	}
	var span *telemetry.Span
	if tsc.Valid() {
		span = telemetry.StartChild(tsc, "stream_generate_serve").Arg("model", model)
	}
	defer span.End()

	seq, gerr := g.Generate(model, req)
	if gerr != nil {
		resp := appendStatus([]byte{gfError}, gerr)
		st.Send(resp)
		return nil // answered: close, don't reset
	}
	// Cancellation watcher: any further client frame, or the client tearing
	// the stream down, cancels the sequence so its slot frees mid-decode.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		var b []byte
		for {
			var rerr error
			b, rerr = st.Recv(b)
			if rerr != nil {
				seq.Cancel()
				return
			}
			seq.Cancel()
		}
	}()
	resp := make([]byte, 0, 32)
	for {
		tok, ok := seq.Next()
		if !ok {
			break
		}
		resp = append(resp[:0], gfToken)
		resp = binary.AppendUvarint(resp, uint64(tok.Index))
		resp = binary.AppendUvarint(resp, tok.Step)
		resp = binary.LittleEndian.AppendUint64(resp, math.Float64bits(tok.Value))
		if serr := st.Send(resp); serr != nil {
			seq.Cancel()
			for {
				if _, more := seq.Next(); !more {
					break
				}
			}
			<-recvDone
			return serr
		}
	}
	reason, ferr := seq.Finish()
	if ferr != nil {
		resp = appendStatus(append(resp[:0], gfError), ferr)
	} else {
		resp = append(append(resp[:0], gfDone), reason...)
	}
	st.Send(resp)
	st.CloseSend()
	<-recvDone
	return nil
}

// parseGenerateReq splits the single request frame; model aliases b.
func parseGenerateReq(b []byte) (req generate.Request, model string, tsc telemetry.SpanContext, err error) {
	fail := func(what string) (generate.Request, string, telemetry.SpanContext, error) {
		return generate.Request{}, "", telemetry.SpanContext{}, fmt.Errorf("serving: malformed generate %s", what)
	}
	budget, n := binary.Uvarint(b)
	if n <= 0 {
		return fail("budget")
	}
	b = b[n:]
	tsc.Trace, n = binary.Uvarint(b)
	if n <= 0 {
		return fail("trace id")
	}
	b = b[n:]
	tsc.Span, n = binary.Uvarint(b)
	if n <= 0 {
		return fail("span id")
	}
	b = b[n:]
	maxTok, n := binary.Uvarint(b)
	if n <= 0 {
		return fail("max tokens")
	}
	b = b[n:]
	stopBits, n := binary.Uvarint(b)
	if n <= 0 {
		return fail("stop threshold")
	}
	b = b[n:]
	ml, n := binary.Uvarint(b)
	if n <= 0 || ml > uint64(len(b)-n) {
		return fail("model name")
	}
	b = b[n:]
	model = string(b[:ml])
	b = b[ml:]
	if len(b)%8 != 0 || len(b) == 0 {
		return fail("prompt")
	}
	prompt := make([]float64, len(b)/8)
	for i := range prompt {
		prompt[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	req = generate.Request{
		Prompt:    prompt,
		MaxTokens: int(maxTok),
		StopBelow: math.Float64frombits(stopBits),
	}
	if budget > 0 {
		req.Deadline = time.Now().Add(time.Duration(budget) * time.Microsecond)
	}
	return req, model, tsc, nil
}

// GenerateStream is the client endpoint of one remote generated sequence.
// It implements generate.Stream, so a relayed sequence consumes exactly like
// a local one.
type GenerateStream struct {
	st   *rpc.Stream
	rbuf []byte

	cancelled atomic.Bool

	mu     sync.Mutex
	done   bool
	finish generate.FinishReason
	err    error
}

// OpenGenerateStream starts one generation on a replica. The deadline bounds
// time-to-first-token and rides the request frame; tsc joins the server-side
// span to the caller's trace.
func OpenGenerateStream(c *rpc.Client, tsc telemetry.SpanContext, model string, req generate.Request) (*GenerateStream, error) {
	st, err := c.OpenStream(GenerateStreamMethod)
	if err != nil {
		return nil, err
	}
	var budget uint64
	if !req.Deadline.IsZero() {
		us := time.Until(req.Deadline).Microseconds()
		if us <= 0 {
			st.Close()
			return nil, ErrDeadline
		}
		budget = uint64(us)
	}
	b := binary.AppendUvarint(nil, budget)
	b = binary.AppendUvarint(b, tsc.Trace)
	b = binary.AppendUvarint(b, tsc.Span)
	b = binary.AppendUvarint(b, uint64(req.MaxTokens))
	b = binary.AppendUvarint(b, math.Float64bits(req.StopBelow))
	b = binary.AppendUvarint(b, uint64(len(model)))
	b = append(b, model...)
	for _, v := range req.Prompt {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	if err := st.Send(b); err != nil {
		st.Close()
		return nil, err
	}
	return &GenerateStream{st: st}, nil
}

// Next implements generate.Stream: it blocks for the next token frame.
func (gs *GenerateStream) Next() (generate.Token, bool) {
	for {
		b, err := gs.st.Recv(gs.rbuf)
		if err != nil {
			if err == io.EOF && gs.cancelled.Load() {
				// We reset the stream; the missing finish frame is ours.
				gs.setFinish(generate.FinishCancelled, nil)
			} else {
				gs.setFinish(generate.FinishClosed, fmt.Errorf("%w (generate stream): %v", ErrClosed, err))
			}
			return generate.Token{}, false
		}
		gs.rbuf = b
		if len(b) == 0 {
			continue
		}
		switch b[0] {
		case gfToken:
			p := b[1:]
			idx, n := binary.Uvarint(p)
			if n <= 0 {
				gs.fail("token index")
				return generate.Token{}, false
			}
			p = p[n:]
			step, n := binary.Uvarint(p)
			if n <= 0 || len(p[n:]) != 8 {
				gs.fail("token frame")
				return generate.Token{}, false
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(p[n:]))
			return generate.Token{Index: int(idx), Value: v, Step: step}, true
		case gfDone:
			gs.setFinish(generate.FinishReason(b[1:]), nil)
			gs.st.Close()
			return generate.Token{}, false
		case gfError:
			if len(b) < 2 {
				gs.fail("error frame")
				return generate.Token{}, false
			}
			gs.setFinish(generate.FinishClosed, errOfStatus(b[1], b[2:]))
			gs.st.Close()
			return generate.Token{}, false
		default:
			gs.fail("frame kind")
			return generate.Token{}, false
		}
	}
}

// Finish implements generate.Stream; valid once Next returned false.
func (gs *GenerateStream) Finish() (generate.FinishReason, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.finish, gs.err
}

// Cancel implements generate.Stream: tearing the stream down resets it on
// the server, whose watcher cancels the sequence and frees its slot.
func (gs *GenerateStream) Cancel() {
	gs.cancelled.Store(true)
	gs.st.Close()
}

func (gs *GenerateStream) setFinish(reason generate.FinishReason, err error) {
	gs.mu.Lock()
	if !gs.done {
		gs.done, gs.finish, gs.err = true, reason, err
	}
	gs.mu.Unlock()
}

func (gs *GenerateStream) fail(what string) {
	gs.setFinish(generate.FinishClosed, fmt.Errorf("%w: malformed generate %s", ErrClosed, what))
	gs.st.Close()
}

var _ generate.Stream = (*GenerateStream)(nil)
