package serving

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/tensor"
)

// Predictor is the front-end contract: the HTTP and binary endpoints serve
// whatever implements it — a local Service or a Router fanning out to
// remote replicas, interchangeably.
type Predictor interface {
	// Predict serves a [features] row or [n, features] batch; a zero
	// deadline applies the implementation's default.
	Predict(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error)
	// Models lists the served models for the status/readiness endpoints.
	Models() []ModelStatus
	// Ready reports whether prediction traffic can be admitted.
	Ready() bool
	// StatsJSON renders the stats endpoint payload.
	StatsJSON() ([]byte, error)
}

// Service is the local serving plane: a registry of hot-swappable model
// versions with one micro-batcher per model in front. It implements
// Predictor for the front-ends.
type Service struct {
	reg  *Registry
	opts BatchOptions

	mu       sync.Mutex
	batchers map[string]*Batcher
	gens     map[string]*genEntry
	closed   bool
}

// NewService wraps a registry; opts apply to every model's batcher.
func NewService(reg *Registry, opts BatchOptions) *Service {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Service{reg: reg, opts: opts, batchers: make(map[string]*Batcher)}
}

// Registry exposes the underlying version store.
func (s *Service) Registry() *Registry { return s.reg }

// ServeModel installs (or hot-swaps in) a model version and ensures its
// batcher is running. It returns the replaced version, already draining —
// await its Drained channel to observe retirement.
func (s *Service) ServeModel(mv *ModelVersion) (*ModelVersion, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	b, ok := s.batchers[mv.Model()]
	if !ok {
		b = NewBatcher(s.reg, mv.Model(), s.opts)
		s.batchers[mv.Model()] = b
	}
	s.mu.Unlock()
	old := s.reg.Serve(mv)
	if old != nil {
		b.Stats().swaps.Add(1)
	}
	return old, nil
}

// batcher resolves a model's batcher.
func (s *Service) batcher(model string) (*Batcher, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	b, ok := s.batchers[model]
	if !ok {
		return nil, ErrNotFound
	}
	return b, nil
}

// Predict serves a single row ([features]) or a pre-batched request
// ([n, features]). Every row goes through the micro-batcher, so rows from
// one multi-row request coalesce with concurrent traffic exactly like
// single-row requests do — and answers are bitwise independent of the
// coalescing, so this changes throughput, never results.
func (s *Service) Predict(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	b, err := s.batcher(model)
	if err != nil {
		return nil, err
	}
	if in == nil {
		return nil, fmt.Errorf("%w: nil input", ErrBadInput)
	}
	// Validate dtype before any row slicing: request tensors arrive from
	// the wire, and sliceRow on a non-float tensor would panic.
	if !in.DType().IsFloat() {
		return nil, fmt.Errorf("%w: want a float tensor, got %v", ErrBadInput, in.DType())
	}
	switch in.Rank() {
	case 1:
		return b.Predict(in, deadline)
	case 2:
		n := in.Shape()[0]
		if n == 0 {
			return nil, fmt.Errorf("%w: empty batch", ErrBadInput)
		}
		rows := make([]*tensor.Tensor, n)
		for i := 0; i < n; i++ {
			rows[i] = sliceRow(in, i)
		}
		outs := make([]rowOut, n)
		var wg sync.WaitGroup
		for i := range rows {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := b.Predict(rows[i], deadline)
				outs[i] = rowOut{out, err}
			}(i)
		}
		wg.Wait()
		for _, o := range outs {
			if o.err != nil {
				return nil, o.err
			}
		}
		return stackOutputs(outs, n)
	default:
		return nil, fmt.Errorf("%w: want rank-1 row or rank-2 batch, got %v", ErrBadInput, in.Shape())
	}
}

type rowOut struct {
	out *tensor.Tensor
	err error
}

// stackOutputs reassembles per-row outputs into one tensor with leading
// dimension n.
func stackOutputs(outs []rowOut, n int) (*tensor.Tensor, error) {
	rest := outs[0].out.Shape()
	stride := rest.NumElements()
	shape := append(tensor.Shape{n}, rest...)
	switch outs[0].out.DType() {
	case tensor.Float32:
		buf := make([]float32, n*stride)
		for i, o := range outs {
			copy(buf[i*stride:(i+1)*stride], o.out.F32())
		}
		return tensor.FromF32(shape, buf), nil
	default:
		buf := make([]float64, n*stride)
		for i, o := range outs {
			copy(buf[i*stride:(i+1)*stride], o.out.F64())
		}
		return tensor.FromF64(shape, buf), nil
	}
}

// Models implements Predictor: predict models plus generative ones.
func (s *Service) Models() []ModelStatus {
	return append(s.reg.Models(), s.genModels()...)
}

// Ready implements Predictor: serving at least one model (of either kind).
func (s *Service) Ready() bool {
	s.mu.Lock()
	closed, gens := s.closed, len(s.gens)
	s.mu.Unlock()
	return !closed && (s.reg.Ready() || gens > 0)
}

// Snapshots returns every model's counters.
func (s *Service) Snapshots() []StatsSnapshot {
	models := s.reg.Models()
	out := make([]StatsSnapshot, 0, len(models))
	for _, m := range models {
		s.mu.Lock()
		b := s.batchers[m.Name]
		s.mu.Unlock()
		if b == nil {
			continue
		}
		st := b.Stats()
		rows, batches := st.rows.Load(), st.batches.Load()
		mean := 0.0
		if batches > 0 {
			mean = float64(rows) / float64(batches)
		}
		out = append(out, StatsSnapshot{
			Model:       m.Name,
			Version:     m.Version,
			State:       m.State,
			Rows:        rows,
			Batches:     batches,
			BatchedRows: st.batchedRows.Load(),
			MeanBatch:   mean,
			MaxBatch:    st.maxBatch.Load(),
			Rejected:    st.rejected.Load(),
			Expired:     st.expired.Load(),
			Errors:      st.errs.Load(),
			Swaps:       st.swaps.Load(),
			Pending:     b.Pending(),
		})
	}
	return out
}

// StatsJSON implements Predictor.
func (s *Service) StatsJSON() ([]byte, error) {
	payload := map[string]any{"models": s.Snapshots()}
	if gs := s.genStats(); len(gs) > 0 {
		payload["generate"] = gs
	}
	return json.Marshal(payload)
}

// Close drains every batcher (queued requests are answered) and stops the
// service; models are unloaded afterwards.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	batchers := make([]*Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	gens := make([]*genEntry, 0, len(s.gens))
	for _, g := range s.gens {
		gens = append(gens, g)
	}
	s.mu.Unlock()
	for _, b := range batchers {
		b.Close()
	}
	for _, g := range gens {
		g.eng.Close()
	}
	for _, m := range s.reg.Models() {
		s.reg.Unload(m.Name)
	}
}
