package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// maxBodyBytes bounds a predict request body (64 MiB: a 2M-element f64
// batch in JSON) — admission control starts at the transport.
const maxBodyBytes = 64 << 20

// NewHTTPHandler serves the KServe-style v1 predictor API over any
// Predictor (a local Service or a replica Router):
//
//	POST /v1/models/<name>:predict   {"instances": [[f, ...], ...]}
//	POST /v1/models/<name>:generate  {"prompt": [f, ...], "max_tokens": n, "stop_below": s}
//	                                 → server-sent events, one token per event
//	                                 (requires a Predictor that is also a Generator)
//	GET  /v1/models                  list served models
//	GET  /v1/models/<name>           one model's status
//	GET  /healthz                    process liveness
//	GET  /readyz                     traffic readiness (503 until a model serves)
//	GET  /statsz                     batching/admission counters
//	GET  /metricz                    Prometheus text exposition (process-wide)
//
// A predict request may carry X-Deadline-Ms; otherwise the predictor's
// default applies. Outcomes map to 200/400/404/429/503/504.
func NewHTTPHandler(p Predictor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "alive"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if p.Ready() {
			writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
	})
	mux.Handle("/metricz", telemetry.Handler())
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		buf, err := p.StatsJSON()
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": p.Models()})
	})
	mux.HandleFunc("/v1/models/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/models/")
		if name, ok := strings.CutSuffix(rest, ":predict"); ok {
			if r.Method != http.MethodPost {
				http.Error(w, "predict wants POST", http.StatusMethodNotAllowed)
				return
			}
			servePredict(w, r, p, name)
			return
		}
		if name, ok := strings.CutSuffix(rest, ":generate"); ok {
			if r.Method != http.MethodPost {
				http.Error(w, "generate wants POST", http.StatusMethodNotAllowed)
				return
			}
			g, ok := p.(Generator)
			if !ok {
				writeError(w, fmt.Errorf("%w: %q (no generative serving)", ErrNotFound, name))
				return
			}
			serveGenerate(w, r, g, name)
			return
		}
		for _, m := range p.Models() {
			if m.Name == rest {
				writeJSON(w, http.StatusOK, m)
				return
			}
		}
		writeError(w, fmt.Errorf("%w: %q", ErrNotFound, rest))
	})
	return mux
}

// predictRequest is the KServe v1 predict body: instances is a list of
// feature-vector rows (a flat list is accepted as one row).
type predictRequest struct {
	Instances json.RawMessage `json:"instances"`
}

func servePredict(w http.ResponseWriter, r *http.Request, p Predictor, model string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadInput, err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, fmt.Errorf("%w: body over %d bytes", ErrOverloaded, maxBodyBytes))
		return
	}
	var req predictRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadInput, err))
		return
	}
	in, err := instancesTensor(req.Instances)
	if err != nil {
		writeError(w, err)
		return
	}

	var deadline time.Time
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		ms, err := strconv.Atoi(h)
		if err != nil || ms <= 0 {
			writeError(w, fmt.Errorf("%w: bad X-Deadline-Ms %q", ErrBadInput, h))
			return
		}
		deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	}

	out, err := p.Predict(model, in, deadline)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"predictions": predictions(out)})
}

// instancesTensor parses instances into a [n, features] float64 tensor.
func instancesTensor(raw json.RawMessage) (*tensor.Tensor, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("%w: missing instances", ErrBadInput)
	}
	var rows [][]float64
	if err := json.Unmarshal(raw, &rows); err != nil {
		var flat []float64
		if err2 := json.Unmarshal(raw, &flat); err2 != nil {
			return nil, fmt.Errorf("%w: instances must be [][]float or []float", ErrBadInput)
		}
		rows = [][]float64{flat}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: empty instances", ErrBadInput)
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: empty feature row", ErrBadInput)
	}
	buf := make([]float64, 0, len(rows)*d)
	for i, row := range rows {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, row 0 has %d", ErrBadInput, i, len(row), d)
		}
		buf = append(buf, row...)
	}
	return tensor.FromF64(tensor.Shape{len(rows), d}, buf), nil
}

// predictions renders the output tensor: [n] → n scalars, [n, k] → n
// k-vectors.
func predictions(out *tensor.Tensor) []any {
	n := 0
	if out.Rank() >= 1 {
		n = out.Shape()[0]
	}
	preds := make([]any, 0, n)
	stride := 1
	if out.Rank() >= 2 {
		stride = out.Shape()[1:].NumElements()
	}
	elem := func(i int) float64 {
		if out.DType() == tensor.Float32 {
			return float64(out.F32()[i])
		}
		return out.F64()[i]
	}
	for i := 0; i < n; i++ {
		if out.Rank() <= 1 {
			preds = append(preds, elem(i))
			continue
		}
		vec := make([]float64, stride)
		for j := range vec {
			vec[j] = elem(i*stride + j)
		}
		preds = append(preds, vec)
	}
	return preds
}

// HTTPStatus maps a serving error onto its HTTP status code.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, HTTPStatus(err), map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
