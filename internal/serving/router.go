package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/tensor"
)

// RouterOptions tune replica selection and failover.
type RouterOptions struct {
	// DefaultDeadline applies to requests carrying none (default 1s).
	DefaultDeadline time.Duration
	// FailBackoff is how long a replica sits out after a transport failure
	// before being offered traffic again (default 500ms).
	FailBackoff time.Duration
	// MaxAttempts bounds the replicas tried per request (default: all).
	MaxAttempts int
	// DisableStreaming forces the per-call predict path. By default the
	// router keeps a small pool of persistent predict streams per replica
	// and falls back to calls only for replicas without the streaming
	// endpoint.
	DisableStreaming bool
	// StreamsPerReplica caps the pooled predict streams kept per replica
	// (default 8). Bursts beyond it open short-lived extra streams.
	StreamsPerReplica int
}

func (o RouterOptions) withDefaults(replicas int) RouterOptions {
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Second
	}
	if o.FailBackoff <= 0 {
		o.FailBackoff = 500 * time.Millisecond
	}
	if o.MaxAttempts <= 0 || o.MaxAttempts > replicas {
		o.MaxAttempts = replicas
	}
	if o.StreamsPerReplica <= 0 {
		o.StreamsPerReplica = 8
	}
	return o
}

// replica is one serving endpoint with its live load and health view.
type replica struct {
	addr        string
	client      *rpc.Client
	outstanding atomic.Int64
	failUntil   atomic.Int64 // unixnano; 0 = healthy

	// streams pools idle predict streams; noStream marks a replica whose
	// server lacks the streaming endpoint, pinning it to the call path.
	streams  chan *PredictStream
	noStream atomic.Bool
}

// getStream reuses a pooled predict stream or opens a new one.
func (rep *replica) getStream() (*PredictStream, error) {
	select {
	case ps := <-rep.streams:
		return ps, nil
	default:
		return OpenPredictStream(rep.client)
	}
}

// putStream returns a healthy stream to the pool; broken or surplus ones
// close.
func (rep *replica) putStream(ps *PredictStream) {
	if ps.Broken() {
		ps.Close()
		return
	}
	select {
	case rep.streams <- ps:
	default:
		ps.Close()
	}
}

func (r *replica) healthyAt(now time.Time) bool {
	return r.failUntil.Load() <= now.UnixNano()
}

// Router spreads predict traffic across model replicas hosted on cluster
// worker tasks: least-outstanding pick, transport failures bench the
// replica briefly and the request retries on the next-best one. The router
// itself implements Predictor, so it sits behind the same HTTP/binary
// front-ends as a local Service — a serving tree.
type Router struct {
	replicas []*replica
	opts     RouterOptions

	routed    atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
}

// NewRouter builds a router over replica addresses (each a tfserve/cluster
// task hosting the binary serving endpoint).
func NewRouter(addrs []string, opts RouterOptions) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("serving: router needs at least one replica")
	}
	r := &Router{opts: opts.withDefaults(len(addrs))}
	for _, a := range addrs {
		r.replicas = append(r.replicas, &replica{
			addr:    a,
			client:  rpc.Dial(a),
			streams: make(chan *PredictStream, r.opts.StreamsPerReplica),
		})
	}
	return r, nil
}

// Close releases every replica connection and its pooled streams.
func (r *Router) Close() {
	for _, rep := range r.replicas {
		for {
			select {
			case ps := <-rep.streams:
				ps.Close()
				continue
			default:
			}
			break
		}
		rep.client.Close()
	}
}

// pick returns the untried replica with the least outstanding work,
// preferring healthy ones; with every replica benched it falls back to the
// least-loaded benched one (the bench is advisory, not a death sentence).
func (r *Router) pick(tried map[*replica]bool) *replica {
	now := time.Now()
	var best, bestBenched *replica
	for _, rep := range r.replicas {
		if tried[rep] {
			continue
		}
		if rep.healthyAt(now) {
			if best == nil || rep.outstanding.Load() < best.outstanding.Load() {
				best = rep
			}
		} else if bestBenched == nil || rep.outstanding.Load() < bestBenched.outstanding.Load() {
			bestBenched = rep
		}
	}
	if best != nil {
		return best
	}
	return bestBenched
}

// Predict implements Predictor: route, and on transport failure bench the
// replica and retry the request on another one while deadline budget
// remains.
func (r *Router) Predict(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	if deadline.IsZero() {
		deadline = time.Now().Add(r.opts.DefaultDeadline)
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	tried := make(map[*replica]bool, r.opts.MaxAttempts)
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		rep := r.pick(tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempt > 0 {
			r.retries.Add(1)
		}
		rep.outstanding.Add(1)
		out, err := r.predictOn(ctx, rep, model, in, deadline)
		rep.outstanding.Add(-1)
		if err == nil {
			r.routed.Add(1)
			return out, nil
		}
		lastErr = err
		if !isTransportErr(err) {
			return nil, err // deterministic application outcome: no failover
		}
		r.failovers.Add(1)
		rep.failUntil.Store(time.Now().Add(r.opts.FailBackoff).UnixNano())
		if ctx.Err() != nil {
			return nil, mapRemoteErr(ctx.Err())
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("serving: no replica available")
	}
	return nil, fmt.Errorf("serving: all replicas failed: %w", lastErr)
}

// predictOn sends one request to one replica, over a pooled predict stream
// when possible, else over the call path. A replica without the streaming
// endpoint is remembered and served by calls from then on.
func (r *Router) predictOn(ctx context.Context, rep *replica, model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	if !r.opts.DisableStreaming && !rep.noStream.Load() {
		ps, err := rep.getStream()
		if err == nil {
			out, perr := ps.Predict(model, in, deadline)
			if isNoStreamHandlerErr(perr) {
				rep.noStream.Store(true)
				rep.putStream(ps)
				return PredictRemote(ctx, rep.client, model, in)
			}
			rep.putStream(ps)
			return out, perr
		}
		// Opening the stream failed (dial-level): the call path shares the
		// transport, so let it produce the canonical failure.
	}
	return PredictRemote(ctx, rep.client, model, in)
}

// Models implements Predictor by asking the first answering replica — the
// fleet serves one model set, any healthy member can describe it.
func (r *Router) Models() []ModelStatus {
	tried := make(map[*replica]bool, len(r.replicas))
	for range r.replicas {
		rep := r.pick(tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := rep.client.CallContext(ctx, "ServingModels", nil)
		cancel()
		if err != nil {
			rep.failUntil.Store(time.Now().Add(r.opts.FailBackoff).UnixNano())
			continue
		}
		var ms []ModelStatus
		if json.Unmarshal(resp, &ms) == nil {
			return ms
		}
	}
	return nil
}

// Ready implements Predictor: some replica is answering with models.
func (r *Router) Ready() bool { return len(r.Models()) > 0 }

// RouterStats is the router's own traffic view.
type RouterStats struct {
	Routed    int64          `json:"routed"`
	Retries   int64          `json:"retries"`
	Failovers int64          `json:"failovers"`
	Replicas  []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica's instantaneous router-side state.
type ReplicaStats struct {
	Addr        string `json:"addr"`
	Outstanding int64  `json:"outstanding"`
	Healthy     bool   `json:"healthy"`
	// Stats is the replica's own /statsz payload, when reachable.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// StatsJSON implements Predictor: the router's routing counters plus each
// reachable replica's own serving stats.
func (r *Router) StatsJSON() ([]byte, error) {
	now := time.Now()
	st := RouterStats{
		Routed:    r.routed.Load(),
		Retries:   r.retries.Load(),
		Failovers: r.failovers.Load(),
	}
	for _, rep := range r.replicas {
		rs := ReplicaStats{
			Addr:        rep.addr,
			Outstanding: rep.outstanding.Load(),
			Healthy:     rep.healthyAt(now),
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if resp, err := rep.client.CallContext(ctx, "ServingStats", nil); err == nil && json.Valid(resp) {
			rs.Stats = resp
		}
		cancel()
		st.Replicas = append(st.Replicas, rs)
	}
	return json.Marshal(map[string]any{"router": st})
}

// marshalModels renders the ServingModels RPC payload.
func marshalModels(ms []ModelStatus) ([]byte, error) {
	return json.Marshal(ms)
}
