package serving

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/rpc"
	"tfhpc/internal/telemetry"
	"tfhpc/internal/tensor"
)

// RouterOptions tune replica selection and failover.
type RouterOptions struct {
	// DefaultDeadline applies to requests carrying none (default 1s).
	DefaultDeadline time.Duration
	// FailBackoff is how long a replica sits out after a transport failure
	// before being offered traffic again (default 500ms).
	FailBackoff time.Duration
	// BenchUntilHealthy pins a failed replica on the bench indefinitely
	// instead of for FailBackoff: it rejoins the pick set only when a
	// health probe calls Unbench. This is the mode a control plane wants —
	// time-based parole trusts the clock, health-driven parole trusts the
	// replica — and it is what makes the router's replica view reliable
	// enough for an autoscaler to act on.
	BenchUntilHealthy bool
	// MaxAttempts bounds the replicas tried per request (default: all
	// replicas present at pick time).
	MaxAttempts int
	// DisableStreaming forces the per-call predict path. By default the
	// router keeps a small pool of persistent predict streams per replica
	// and falls back to calls only for replicas without the streaming
	// endpoint.
	DisableStreaming bool
	// StreamsPerReplica caps the pooled predict streams kept per replica
	// (default 8). Bursts beyond it open short-lived extra streams.
	StreamsPerReplica int
	// Observer, when set, is called exactly once per Predict with the
	// requested model (before any canary rewrite), whether the request was
	// routed to the canary arm, the end-to-end latency, and the outcome.
	// The control plane's SLO windows hang off this hook.
	Observer func(model string, canary bool, latency time.Duration, err error)
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = time.Second
	}
	if o.FailBackoff <= 0 {
		o.FailBackoff = 500 * time.Millisecond
	}
	if o.StreamsPerReplica <= 0 {
		o.StreamsPerReplica = 8
	}
	return o
}

// benchForever is the failUntil sentinel for health-driven benching: far
// enough out that only an explicit Unbench restores the replica.
const benchForever = math.MaxInt64

// replica is one serving endpoint with its live load and health view.
type replica struct {
	addr        string
	client      *rpc.Client
	outstanding atomic.Int64
	failUntil   atomic.Int64 // unixnano; 0 = healthy, benchForever = until Unbench
	draining    atomic.Bool  // excluded from picks; RemoveReplica is waiting it out

	// streams pools idle predict streams; noStream marks a replica whose
	// server lacks the streaming endpoint, pinning it to the call path.
	streams  chan *PredictStream
	noStream atomic.Bool
}

// getStream reuses a pooled predict stream or opens a new one.
func (rep *replica) getStream() (*PredictStream, error) {
	select {
	case ps := <-rep.streams:
		return ps, nil
	default:
		return OpenPredictStream(rep.client)
	}
}

// putStream returns a healthy stream to the pool; broken or surplus ones
// close.
func (rep *replica) putStream(ps *PredictStream) {
	if ps.Broken() {
		ps.Close()
		return
	}
	select {
	case rep.streams <- ps:
	default:
		ps.Close()
	}
}

func (r *replica) healthyAt(now time.Time) bool {
	return r.failUntil.Load() <= now.UnixNano()
}

// close releases the replica's pooled streams and connection.
func (r *replica) close() {
	for {
		select {
		case ps := <-r.streams:
			ps.Close()
			continue
		default:
		}
		break
	}
	r.client.Close()
}

// split is one model's weighted canary traffic-split. The arm decision is a
// deterministic stride over a request counter, not a coin flip: out of every
// 100 requests, exactly `percent` go to the canary — so a rollout
// controller's SLO window measures the percentage it set, not a sample of it.
type split struct {
	target  string // canary model name requests are rewritten to
	percent atomic.Int64
	count   atomic.Uint64
}

// take decides one request's arm.
func (s *split) take() bool {
	pct := s.percent.Load()
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	n := s.count.Add(1) - 1
	return int64(n%100) < pct
}

// Router spreads predict traffic across model replicas hosted on cluster
// worker tasks: least-outstanding pick, transport failures bench the
// replica and the request retries on the next-best one. The replica set is
// dynamic — a control plane adds warmed replicas and drains retiring ones
// under live traffic — and each model may carry a weighted canary
// traffic-split. The router itself implements Predictor, so it sits behind
// the same HTTP/binary front-ends as a local Service — a serving tree.
type Router struct {
	opts RouterOptions

	mu       sync.RWMutex
	replicas []*replica
	splits   map[string]*split

	routed    atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64
	unbenches atomic.Int64
}

// NewRouter builds a router over replica addresses (each a tfserve/cluster
// task hosting the binary serving endpoint). An empty address list is
// allowed: a control-plane router starts empty and adds replicas as the
// fleet spawns them.
func NewRouter(addrs []string, opts RouterOptions) (*Router, error) {
	r := &Router{opts: opts.withDefaults(), splits: make(map[string]*split)}
	for _, a := range addrs {
		if err := r.AddReplica(a); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// AddReplica dials addr and adds it to the pick set. Adding an address that
// is already a member is an error — the caller's replica bookkeeping is
// confused and traffic-doubling onto one backend would hide it.
func (r *Router) AddReplica(addr string) error {
	if addr == "" {
		return fmt.Errorf("serving: empty replica address")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rep := range r.replicas {
		if rep.addr == addr {
			return fmt.Errorf("serving: replica %s already routed", addr)
		}
	}
	// Copy-on-write: snapshot() hands the current slice to lock-free
	// readers, so membership changes must never mutate its backing array.
	next := make([]*replica, len(r.replicas), len(r.replicas)+1)
	copy(next, r.replicas)
	r.replicas = append(next, &replica{
		addr:    addr,
		client:  rpc.Dial(addr),
		streams: make(chan *PredictStream, r.opts.StreamsPerReplica),
	})
	mRouterReplicas.Set(int64(len(r.replicas)))
	return nil
}

// RemoveReplica retires addr without dropping traffic: the replica is
// excluded from new picks immediately, then removal waits (up to drain) for
// its outstanding requests to finish before the connection closes. An
// expired drain still removes the replica — the remaining in-flight
// requests fail over like any transport loss. Returns whether the drain
// completed cleanly.
func (r *Router) RemoveReplica(addr string, drain time.Duration) (bool, error) {
	r.mu.Lock()
	var rep *replica
	for _, cand := range r.replicas {
		if cand.addr == addr {
			rep = cand
			break
		}
	}
	if rep == nil {
		r.mu.Unlock()
		return false, fmt.Errorf("serving: replica %s not routed", addr)
	}
	rep.draining.Store(true)
	r.mu.Unlock()

	deadline := time.Now().Add(drain)
	clean := true
	for rep.outstanding.Load() > 0 {
		if time.Now().After(deadline) {
			clean = false
			break
		}
		time.Sleep(time.Millisecond)
	}

	r.mu.Lock()
	// Membership may have shifted while draining; re-find by identity, and
	// rebuild the slice copy-on-write — readers hold the old one.
	next := make([]*replica, 0, len(r.replicas)-1)
	for _, cand := range r.replicas {
		if cand != rep {
			next = append(next, cand)
		}
	}
	r.replicas = next
	mRouterReplicas.Set(int64(len(next)))
	r.mu.Unlock()
	rep.close()
	return clean, nil
}

// ReplicaAddrs lists the current members (including draining and benched
// ones), in pick order.
func (r *Router) ReplicaAddrs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.replicas))
	for i, rep := range r.replicas {
		out[i] = rep.addr
	}
	return out
}

// NumReplicas returns the current member count.
func (r *Router) NumReplicas() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.replicas)
}

// Outstanding sums the in-flight requests across all replicas — the load
// signal an autoscaler divides by the replica count.
func (r *Router) Outstanding() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var sum int64
	for _, rep := range r.replicas {
		sum += rep.outstanding.Load()
	}
	return sum
}

// Benched lists replicas currently excluded from picks by a failure bench.
func (r *Router) Benched() []string {
	now := time.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for _, rep := range r.replicas {
		if !rep.healthyAt(now) {
			out = append(out, rep.addr)
		}
	}
	return out
}

// Unbench returns a benched replica to the pick set — the health-probe
// driven recovery path: a replica that answers Health again serves again,
// whatever FailBackoff thinks. Unknown or already-healthy addresses no-op.
func (r *Router) Unbench(addr string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, rep := range r.replicas {
		if rep.addr == addr && rep.failUntil.Load() > time.Now().UnixNano() {
			rep.failUntil.Store(0)
			r.unbenches.Add(1)
			mUnbenches.Inc()
		}
	}
}

// bench sidelines a replica after a transport failure: until a health probe
// clears it (BenchUntilHealthy) or for FailBackoff.
func (r *Router) bench(rep *replica) {
	mBenchEvents.Inc()
	if r.opts.BenchUntilHealthy {
		rep.failUntil.Store(benchForever)
		return
	}
	rep.failUntil.Store(time.Now().Add(r.opts.FailBackoff).UnixNano())
}

// SetSplit routes percent% of predict requests for model onto canaryModel
// instead (0..100, deterministic stride). Setting percent on an existing
// split adjusts it in place; the split stays until ClearSplit.
func (r *Router) SetSplit(model, canaryModel string, percent int) error {
	if model == "" || canaryModel == "" || model == canaryModel {
		return fmt.Errorf("serving: split needs distinct model and canary names")
	}
	if percent < 0 || percent > 100 {
		return fmt.Errorf("serving: split percent %d out of [0,100]", percent)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := r.splits[model]
	if sp == nil || sp.target != canaryModel {
		sp = &split{target: canaryModel}
		r.splits[model] = sp
	}
	sp.percent.Store(int64(percent))
	return nil
}

// ClearSplit removes model's traffic-split: 100% of requests route to the
// default arm again, immediately.
func (r *Router) ClearSplit(model string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.splits, model)
}

// SplitOf reports model's current split (canary name and percent).
func (r *Router) SplitOf(model string) (canaryModel string, percent int, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sp := r.splits[model]
	if sp == nil {
		return "", 0, false
	}
	return sp.target, int(sp.percent.Load()), true
}

func (r *Router) splitFor(model string) *split {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.splits[model]
}

// Close releases every replica connection and its pooled streams.
func (r *Router) Close() {
	r.mu.Lock()
	reps := r.replicas
	r.replicas = nil
	mRouterReplicas.Set(0)
	r.mu.Unlock()
	for _, rep := range reps {
		rep.close()
	}
}

// snapshot returns the current membership slice (shared, read-only).
func (r *Router) snapshot() []*replica {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.replicas
}

// pick returns the untried, non-draining replica with the least outstanding
// work, preferring healthy ones; with every candidate benched it falls back
// to the least-loaded benched one (the bench is advisory, not a death
// sentence — a fleet-wide bench must not black-hole traffic).
func (r *Router) pick(reps []*replica, tried map[*replica]bool) *replica {
	now := time.Now()
	var best, bestBenched *replica
	for _, rep := range reps {
		if tried[rep] || rep.draining.Load() {
			continue
		}
		if rep.healthyAt(now) {
			if best == nil || rep.outstanding.Load() < best.outstanding.Load() {
				best = rep
			}
		} else if bestBenched == nil || rep.outstanding.Load() < bestBenched.outstanding.Load() {
			bestBenched = rep
		}
	}
	if best != nil {
		return best
	}
	return bestBenched
}

// Predict implements Predictor: resolve the model's traffic-split arm,
// route, and on transport failure bench the replica and retry the request
// on another one while deadline budget remains.
func (r *Router) Predict(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	name, canary := model, false
	if sp := r.splitFor(model); sp != nil && sp.take() {
		name, canary = sp.target, true
	}
	start := time.Now()
	out, err := r.route(name, in, deadline)
	if r.opts.Observer != nil {
		r.opts.Observer(model, canary, time.Since(start), err)
	}
	return out, err
}

func (r *Router) route(model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	if deadline.IsZero() {
		deadline = time.Now().Add(r.opts.DefaultDeadline)
	}
	// The Predictor interface carries no context, so a routed predict is a
	// trace root: every hop below (pick, stream send, remote serve span)
	// hangs off this span via the ids on the wire.
	span := telemetry.StartRoot("router_predict").Arg("model", model)
	defer span.End()
	ctx, cancel := context.WithDeadline(telemetry.ContextWith(context.Background(), span), deadline)
	defer cancel()

	reps := r.snapshot()
	maxAttempts := r.opts.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(reps) {
		maxAttempts = len(reps)
	}
	tried := make(map[*replica]bool, maxAttempts)
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rep := r.pick(reps, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempt > 0 {
			r.retries.Add(1)
			mRetries.Inc()
		}
		rep.outstanding.Add(1)
		mRouterOutstanding.Add(1)
		attemptSpan := span.Child("router_attempt").Arg("replica", rep.addr)
		out, err := r.predictOn(telemetry.ContextWith(ctx, attemptSpan), rep, model, in, deadline)
		attemptSpan.End()
		rep.outstanding.Add(-1)
		mRouterOutstanding.Add(-1)
		if err == nil {
			r.routed.Add(1)
			mRouted.Inc()
			return out, nil
		}
		lastErr = err
		if !isTransportErr(err) {
			return nil, err // deterministic application outcome: no failover
		}
		r.failovers.Add(1)
		mFailovers.Inc()
		r.bench(rep)
		span.Arg("benched", rep.addr)
		if ctx.Err() != nil {
			return nil, mapRemoteErr(ctx.Err())
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("serving: no replica available")
	}
	return nil, fmt.Errorf("serving: all replicas failed: %w", lastErr)
}

// predictOn sends one request to one replica, over a pooled predict stream
// when possible, else over the call path. A replica without the streaming
// endpoint is remembered and served by calls from then on.
func (r *Router) predictOn(ctx context.Context, rep *replica, model string, in *tensor.Tensor, deadline time.Time) (*tensor.Tensor, error) {
	if !r.opts.DisableStreaming && !rep.noStream.Load() {
		ps, err := rep.getStream()
		if err == nil {
			out, perr := ps.PredictTraced(telemetry.SpanFromContext(ctx).Context(), model, in, deadline)
			if isNoStreamHandlerErr(perr) {
				rep.noStream.Store(true)
				rep.putStream(ps)
				return PredictRemote(ctx, rep.client, model, in)
			}
			rep.putStream(ps)
			return out, perr
		}
		// Opening the stream failed (dial-level): the call path shares the
		// transport, so let it produce the canonical failure.
	}
	return PredictRemote(ctx, rep.client, model, in)
}

// Models implements Predictor by asking the first answering replica — the
// fleet serves one model set, any healthy member can describe it.
func (r *Router) Models() []ModelStatus {
	reps := r.snapshot()
	tried := make(map[*replica]bool, len(reps))
	for range reps {
		rep := r.pick(reps, tried)
		if rep == nil {
			break
		}
		tried[rep] = true
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, err := rep.client.CallContext(ctx, "ServingModels", nil)
		cancel()
		if err != nil {
			r.bench(rep)
			continue
		}
		var ms []ModelStatus
		if json.Unmarshal(resp, &ms) == nil {
			return ms
		}
	}
	return nil
}

// Ready implements Predictor: some replica is answering with models.
func (r *Router) Ready() bool { return len(r.Models()) > 0 }

// RouterStats is the router's own traffic view.
type RouterStats struct {
	Routed    int64 `json:"routed"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Unbenches int64 `json:"unbenches"`
	// Outstanding/Benched/ReplicaAddrs summarize the live replica view so a
	// /statsz scrape in -route mode sees the routing state without walking
	// the per-replica entries (which may be missing when replicas are
	// unreachable).
	Outstanding  int64          `json:"outstanding"`
	Benched      []string       `json:"benched,omitempty"`
	ReplicaAddrs []string       `json:"replica_addrs"`
	Splits       []SplitStatus  `json:"splits,omitempty"`
	Replicas     []ReplicaStats `json:"replicas"`
}

// SplitStatus is one model's live traffic-split.
type SplitStatus struct {
	Model   string `json:"model"`
	Canary  string `json:"canary"`
	Percent int    `json:"percent"`
}

// ReplicaStats is one replica's instantaneous router-side state.
type ReplicaStats struct {
	Addr        string `json:"addr"`
	Outstanding int64  `json:"outstanding"`
	Healthy     bool   `json:"healthy"`
	Draining    bool   `json:"draining,omitempty"`
	// Stats is the replica's own /statsz payload, when reachable.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// StatsJSON implements Predictor: the router's routing counters plus each
// reachable replica's own serving stats.
func (r *Router) StatsJSON() ([]byte, error) {
	now := time.Now()
	st := RouterStats{
		Routed:       r.routed.Load(),
		Retries:      r.retries.Load(),
		Failovers:    r.failovers.Load(),
		Unbenches:    r.unbenches.Load(),
		Outstanding:  r.Outstanding(),
		Benched:      r.Benched(),
		ReplicaAddrs: r.ReplicaAddrs(),
	}
	r.mu.RLock()
	reps := r.replicas
	for model, sp := range r.splits {
		st.Splits = append(st.Splits, SplitStatus{
			Model: model, Canary: sp.target, Percent: int(sp.percent.Load()),
		})
	}
	r.mu.RUnlock()
	for _, rep := range reps {
		rs := ReplicaStats{
			Addr:        rep.addr,
			Outstanding: rep.outstanding.Load(),
			Healthy:     rep.healthyAt(now),
			Draining:    rep.draining.Load(),
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if resp, err := rep.client.CallContext(ctx, "ServingStats", nil); err == nil && json.Valid(resp) {
			rs.Stats = resp
		}
		cancel()
		st.Replicas = append(st.Replicas, rs)
	}
	return json.Marshal(map[string]any{"router": st})
}

// marshalModels renders the ServingModels RPC payload.
func marshalModels(ms []ModelStatus) ([]byte, error) {
	return json.Marshal(ms)
}
