package controlplane

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
)

// Rollout states. The machine only moves forward:
//
//	Pending → Warming → Holding(p₀) → … → Holding(pₙ) → Promoting → Promoted
//	                        │breach                  │breach
//	                        └────── RollingBack ─────┘→ RolledBack
//
// plus Failed for deploy-time errors (nothing was attached to traffic yet).
const (
	StatePending     = "pending"
	StateWarming     = "warming"
	StateHolding     = "holding"
	StatePromoting   = "promoting"
	StatePromoted    = "promoted"
	StateRollingBack = "rolling-back"
	StateRolledBack  = "rolled-back"
	StateFailed      = "failed"
)

// RolloutConfig paces one canary rollout.
type RolloutConfig struct {
	// Steps are the canary traffic percentages walked in order
	// (default 10, 50, 100). The last step's verdict decides promotion.
	Steps []int
	// Hold is how long each step must stay within SLO (default 2s).
	Hold time.Duration
	// MinSamples is the smallest canary window that can produce a verdict
	// (default 20). A step starving below it past SampleGrace rolls back —
	// an unmeasurable canary is an unsafe canary.
	MinSamples int
	// SampleGrace extends a starving step beyond Hold (default 3×Hold).
	SampleGrace time.Duration
	// MaxP99 is the canary window's p99 ceiling (default 250ms).
	MaxP99 time.Duration
	// MaxErrorRate is the canary window's error-rate ceiling (default 0.01).
	MaxErrorRate float64
	// RemoveGrace separates clearing the traffic-split from unloading the
	// canary alias (default 500ms): requests the split already rewrote must
	// land on a still-loaded version — unloading eagerly would turn them
	// into not-found errors, i.e. dropped requests.
	RemoveGrace time.Duration
	// Poll is the SLO re-check period within a hold (default Hold/8,
	// floored at 10ms): a breach mid-hold rolls back immediately.
	Poll time.Duration
}

func (c RolloutConfig) withDefaults() RolloutConfig {
	if len(c.Steps) == 0 {
		c.Steps = []int{10, 50, 100}
	}
	if c.Hold <= 0 {
		c.Hold = 2 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.SampleGrace <= 0 {
		c.SampleGrace = 3 * c.Hold
	}
	if c.MaxP99 <= 0 {
		c.MaxP99 = 250 * time.Millisecond
	}
	if c.MaxErrorRate <= 0 {
		c.MaxErrorRate = 0.01
	}
	if c.RemoveGrace <= 0 {
		c.RemoveGrace = 500 * time.Millisecond
	}
	if c.Poll <= 0 {
		c.Poll = c.Hold / 8
		if c.Poll < 10*time.Millisecond {
			c.Poll = 10 * time.Millisecond
		}
	}
	return c
}

// RolloutStatus is one rollout's live view.
type RolloutStatus struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	State   string `json:"state"`
	Percent int    `json:"percent"`
	// Window is the canary arm's current SLO window.
	WindowCount   int     `json:"window_count"`
	WindowP99Ms   float64 `json:"window_p99_ms"`
	WindowErrRate float64 `json:"window_err_rate"`
	Reason        string  `json:"reason,omitempty"`
}

// Rollout walks one canary through the traffic-split ladder: deploy warmed
// canary on every backend, step the split percentage, hold each step against
// the canary arm's SLO window (p99 + error rate), and either promote via the
// registry hot-swap or roll back to 100% default traffic. A breach rolls
// back from any step, immediately.
type Rollout struct {
	cfg     RolloutConfig
	fleet   *Fleet
	monitor *Monitor
	model   string
	version int
	src     ModelSource

	mu      sync.Mutex
	state   string
	percent int
	reason  string

	done chan struct{}
}

// newRollout builds (but does not start) a rollout.
func newRollout(fleet *Fleet, monitor *Monitor, model string, version int, src ModelSource, cfg RolloutConfig) *Rollout {
	return &Rollout{
		cfg: cfg.withDefaults(), fleet: fleet, monitor: monitor,
		model: model, version: version, src: src,
		state: StatePending, done: make(chan struct{}),
	}
}

// Done closes when the rollout reached a terminal state.
func (ro *Rollout) Done() <-chan struct{} { return ro.done }

// Status snapshots the rollout (including the live canary SLO window).
func (ro *Rollout) Status() RolloutStatus {
	win := ro.monitor.Arm(ro.model, true)
	ro.mu.Lock()
	defer ro.mu.Unlock()
	return RolloutStatus{
		Model:         ro.model,
		Version:       ro.version,
		State:         ro.state,
		Percent:       ro.percent,
		WindowCount:   win.Count,
		WindowP99Ms:   float64(win.P99) / float64(time.Millisecond),
		WindowErrRate: win.ErrorRate(),
		Reason:        ro.reason,
	}
}

// Terminal reports whether the rollout has finished, and in which state.
func (ro *Rollout) Terminal() (string, bool) {
	ro.mu.Lock()
	defer ro.mu.Unlock()
	switch ro.state {
	case StatePromoted, StateRolledBack, StateFailed:
		return ro.state, true
	}
	return ro.state, false
}

func (ro *Rollout) set(state string, percent int, reason string) {
	ro.mu.Lock()
	ro.state, ro.percent = state, percent
	if reason != "" {
		ro.reason = reason
	}
	ro.mu.Unlock()
	mRolloutTransitions.Inc()
	telemetry.Instant("rollout_transition",
		"model", ro.model, "state", state, "percent", strconv.Itoa(percent))
}

// run drives the machine to a terminal state. It is the controller
// goroutine; ControlPlane.StartRollout launches it.
func (ro *Rollout) run() {
	defer close(ro.done)

	ro.set(StateWarming, 0, "")
	if err := ro.fleet.DeployCanary(ro.model, ro.version, ro.src); err != nil {
		// Nothing attached to traffic yet: unload whatever partially
		// deployed and fail without touching the default arm.
		ro.fleet.RemoveCanary(ro.model)
		ro.set(StateFailed, 0, err.Error())
		return
	}

	router := ro.fleet.Router()
	for _, pct := range ro.cfg.Steps {
		// Each step gets a fresh canary window: the verdict must measure
		// this percentage, not echoes of the previous one.
		ro.monitor.ResetArm(ro.model, true)
		if err := router.SetSplit(ro.model, CanaryName(ro.model), pct); err != nil {
			ro.rollback(fmt.Sprintf("set split %d%%: %v", pct, err))
			return
		}
		ro.set(StateHolding, pct, "")
		if reason, ok := ro.hold(); !ok {
			ro.rollback(reason)
			return
		}
	}

	ro.set(StatePromoting, 100, "")
	if err := ro.fleet.PromoteCanary(ro.model); err != nil {
		ro.rollback(fmt.Sprintf("promote: %v", err))
		return
	}
	ro.detachCanary()
	ro.set(StatePromoted, 100, "")
}

// hold watches the canary window for one step: breach → (reason, false),
// SLO held for Hold with enough samples → ("", true). A starving window
// waits up to SampleGrace past the hold before giving up.
func (ro *Rollout) hold() (string, bool) {
	start := time.Now()
	for {
		time.Sleep(ro.cfg.Poll)
		win := ro.monitor.Arm(ro.model, true)
		// A breach needs MinSamples too: one slow request out of three is
		// noise, out of fifty is a signal.
		if win.Count >= ro.cfg.MinSamples {
			if win.P99 > ro.cfg.MaxP99 {
				return fmt.Sprintf("canary p99 %v > ceiling %v (%d samples)", win.P99, ro.cfg.MaxP99, win.Count), false
			}
			if rate := win.ErrorRate(); rate > ro.cfg.MaxErrorRate {
				return fmt.Sprintf("canary error rate %.3f > ceiling %.3f (%d samples)", rate, ro.cfg.MaxErrorRate, win.Count), false
			}
		}
		held := time.Since(start)
		if held >= ro.cfg.Hold {
			if win.Count >= ro.cfg.MinSamples {
				return "", true
			}
			if held >= ro.cfg.Hold+ro.cfg.SampleGrace {
				return fmt.Sprintf("canary starved: %d samples < %d after %v", win.Count, ro.cfg.MinSamples, held.Round(time.Millisecond)), false
			}
		}
	}
}

// detachCanary clears the split, waits out requests the split already
// rewrote, then unloads the canary alias. Both promote and rollback end
// through here — it is the zero-drop detach.
func (ro *Rollout) detachCanary() {
	ro.fleet.Router().ClearSplit(ro.model)
	time.Sleep(ro.cfg.RemoveGrace)
	ro.fleet.RemoveCanary(ro.model)
}

// rollback restores 100% default traffic and retires the canary.
func (ro *Rollout) rollback(reason string) {
	ro.set(StateRollingBack, 0, reason)
	ro.detachCanary()
	ro.set(StateRolledBack, 0, "")
}
