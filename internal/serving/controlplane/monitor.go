package controlplane

import (
	"sort"
	"sync"
	"time"
)

// maxWindowSamples bounds one arm window's retained samples; beyond it the
// oldest halves are dropped. At serving rates the window duration is the
// real bound — this is a memory backstop.
const maxWindowSamples = 16384

// sample is one observed request outcome.
type sample struct {
	at      time.Time
	latency time.Duration
	err     bool
}

// armWindow is a sliding window of outcomes for one traffic arm (a model's
// default or canary side).
type armWindow struct {
	samples []sample
}

func (w *armWindow) add(s sample) {
	if len(w.samples) >= maxWindowSamples {
		w.samples = append(w.samples[:0], w.samples[len(w.samples)/2:]...)
	}
	w.samples = append(w.samples, s)
}

func (w *armWindow) prune(cutoff time.Time) {
	i := 0
	for i < len(w.samples) && w.samples[i].at.Before(cutoff) {
		i++
	}
	if i > 0 {
		w.samples = append(w.samples[:0], w.samples[i:]...)
	}
}

// ArmStats is one traffic arm's sliding-window view.
type ArmStats struct {
	Count  int           `json:"count"`
	Errors int           `json:"errors"`
	P50    time.Duration `json:"-"`
	P99    time.Duration `json:"-"`
}

// ErrorRate is Errors/Count (0 with no samples).
func (a ArmStats) ErrorRate() float64 {
	if a.Count == 0 {
		return 0
	}
	return float64(a.Errors) / float64(a.Count)
}

func (w *armWindow) stats() ArmStats {
	st := ArmStats{Count: len(w.samples)}
	if st.Count == 0 {
		return st
	}
	lats := make([]time.Duration, 0, st.Count)
	for _, s := range w.samples {
		if s.err {
			st.Errors++
		}
		lats = append(lats, s.latency)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.P50 = lats[(st.Count-1)*50/100]
	st.P99 = lats[(st.Count-1)*99/100]
	return st
}

// armKey identifies one model arm.
type armKey struct {
	model  string
	canary bool
}

// Monitor is the control plane's SLO window store. It hangs off the router's
// Observer hook, so it sees exactly one outcome per Predict — which is what
// makes the request accounting exact: total requests in equals outcomes
// observed, with nothing double-counted across a rollback. Per-arm sliding
// windows answer "is the canary within SLO right now"; the aggregate window
// is the autoscaler's p99 signal.
type Monitor struct {
	window time.Duration

	mu   sync.Mutex
	arms map[armKey]*armWindow

	// Totals are monotonic (never windowed): the accounting ledger.
	total, errs           int64
	defaultOK, canaryOK   int64
	defaultErr, canaryErr int64
}

// NewMonitor builds a monitor with the given sliding-window span
// (default 30s).
func NewMonitor(window time.Duration) *Monitor {
	if window <= 0 {
		window = 30 * time.Second
	}
	return &Monitor{window: window, arms: make(map[armKey]*armWindow)}
}

// Observe records one request outcome; wire it as the router's Observer.
func (m *Monitor) Observe(model string, canary bool, latency time.Duration, err error) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	k := armKey{model, canary}
	w := m.arms[k]
	if w == nil {
		w = &armWindow{}
		m.arms[k] = w
	}
	am := mArmStable
	if canary {
		am = mArmCanary
	}
	am.requests.Inc()
	am.latency.Observe(latency.Seconds())
	if err != nil {
		am.errors.Inc()
	}
	w.add(sample{at: now, latency: latency, err: err != nil})
	m.total++
	switch {
	case err != nil && canary:
		m.errs++
		m.canaryErr++
	case err != nil:
		m.errs++
		m.defaultErr++
	case canary:
		m.canaryOK++
	default:
		m.defaultOK++
	}
}

// Arm returns the sliding-window stats of one model arm.
func (m *Monitor) Arm(model string, canary bool) ArmStats {
	cutoff := time.Now().Add(-m.window)
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.arms[armKey{model, canary}]
	if w == nil {
		return ArmStats{}
	}
	w.prune(cutoff)
	return w.stats()
}

// ResetArm clears one arm's window — a rollout controller resets the canary
// window at each step so the SLO verdict covers only the current percentage.
func (m *Monitor) ResetArm(model string, canary bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.arms, armKey{model, canary})
}

// P99 is the aggregate window p99 across every arm — the autoscaler's
// latency-ceiling signal.
func (m *Monitor) P99() time.Duration {
	cutoff := time.Now().Add(-m.window)
	m.mu.Lock()
	defer m.mu.Unlock()
	var lats []time.Duration
	for _, w := range m.arms {
		w.prune(cutoff)
		for _, s := range w.samples {
			lats = append(lats, s.latency)
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[(len(lats)-1)*99/100]
}

// Totals is the monotonic ledger: every outcome ever observed, split by arm.
// total == defaultOK + canaryOK + errs always holds; tests assert it against
// their own sent counter to prove no request is lost or double-counted.
func (m *Monitor) Totals() (total, defaultOK, canaryOK, errs int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total, m.defaultOK, m.canaryOK, m.errs
}
