package controlplane

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"tfhpc/internal/telemetry"
)

// AutoscalerConfig bounds and paces the replica-count loop.
type AutoscalerConfig struct {
	// Min/Max bound the replica count (defaults 1 and 4). The fleet never
	// leaves [Min, Max] on the autoscaler's account.
	Min, Max int
	// TargetOutstanding is the desired mean in-flight requests per replica
	// (default 4): desired = ceil(load / target).
	TargetOutstanding float64
	// P99Ceiling, when set, adds a latency trigger: aggregate window p99
	// above it requests one more replica even if outstanding looks fine.
	P99Ceiling time.Duration
	// Tick is the control-loop period (default 250ms).
	Tick time.Duration
	// UpCooldown is the minimum gap between scale-ups (default one tick):
	// growth should be fast.
	UpCooldown time.Duration
	// DownCooldown is the minimum gap between scale-downs (default 3s):
	// shrink should be deliberate — a retire costs a drain and a respawn
	// costs a warmup.
	DownCooldown time.Duration
	// Hysteresis widens the scale-down band (default 0.25): shrink only if
	// the load would still fit with (1+Hysteresis) headroom at the smaller
	// size. It is what keeps a load sitting on a replica boundary from
	// flapping the fleet.
	Hysteresis float64
	// EwmaAlpha smooths the sampled load (default 0.3, 1 disables
	// smoothing).
	EwmaAlpha float64
	// FlapWindow and FlapLoadDelta define a flap: a scale reversing the
	// previous scale's direction within FlapWindow while the smoothed load
	// moved less than FlapLoadDelta (relative, default 10s / 0.2). Flaps are
	// counted, surfaced in status, and asserted zero by the CI smoke.
	FlapWindow    time.Duration
	FlapLoadDelta float64
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max < c.Min {
		c.Max = c.Min
		if c.Max < 4 {
			c.Max = 4
		}
	}
	if c.TargetOutstanding <= 0 {
		c.TargetOutstanding = 4
	}
	if c.Tick <= 0 {
		c.Tick = 250 * time.Millisecond
	}
	if c.UpCooldown <= 0 {
		c.UpCooldown = c.Tick
	}
	if c.DownCooldown <= 0 {
		c.DownCooldown = 3 * time.Second
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 0.25
	}
	if c.EwmaAlpha <= 0 || c.EwmaAlpha > 1 {
		c.EwmaAlpha = 0.3
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 10 * time.Second
	}
	if c.FlapLoadDelta <= 0 {
		c.FlapLoadDelta = 0.2
	}
	return c
}

// Autoscaler closes the loop from the router's load signals to the fleet's
// size: each tick it reaps dead members, paroles recovered benched replicas,
// samples total outstanding requests, and resizes the fleet toward
// ceil(load/target) within [Min, Max] — scale-ups after UpCooldown,
// scale-downs after DownCooldown and only with hysteresis headroom.
type Autoscaler struct {
	cfg   AutoscalerConfig
	fleet *Fleet

	// load and p99 are the sampled signals; injectable for deterministic
	// tests. Defaults: router total outstanding, monitor aggregate p99.
	load func() float64
	p99  func() time.Duration

	mu          sync.Mutex
	ewma        float64
	havePrev    bool
	lastUp      time.Time
	lastDown    time.Time
	lastDir     int // +1 up, -1 down, 0 none yet
	lastDirAt   time.Time
	lastDirLoad float64
	scaleUps    int64
	scaleDowns  int64
	flaps       int64
	lastErr     string

	stop chan struct{}
	done chan struct{}
}

// NewAutoscaler wires an autoscaler over a fleet. monitor may be nil when no
// latency ceiling is configured.
func NewAutoscaler(fleet *Fleet, monitor *Monitor, cfg AutoscalerConfig) *Autoscaler {
	a := &Autoscaler{cfg: cfg.withDefaults(), fleet: fleet}
	a.load = func() float64 { return float64(fleet.Router().Outstanding()) }
	if monitor != nil {
		a.p99 = monitor.P99
	} else {
		a.p99 = func() time.Duration { return 0 }
	}
	return a
}

// Start launches the control loop. Stop with Close.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.run(a.stop, a.done)
}

func (a *Autoscaler) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(a.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			a.tick(now)
		}
	}
}

// Close stops the loop (the fleet is left at its current size).
func (a *Autoscaler) Close() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// tick runs one control iteration at the given time.
func (a *Autoscaler) tick(now time.Time) {
	// Membership health first: replace dead members and parole recovered
	// benched ones, so the size decision acts on a truthful replica view.
	if _, err := a.fleet.ReapDead(); err != nil {
		a.setErr(fmt.Sprintf("reap: %v", err))
	}
	a.fleet.UnbenchRecovered()

	load := a.load()
	a.mu.Lock()
	if !a.havePrev {
		a.ewma, a.havePrev = load, true
	} else {
		a.ewma = a.cfg.EwmaAlpha*load + (1-a.cfg.EwmaAlpha)*a.ewma
	}
	ewma := a.ewma
	a.mu.Unlock()

	cur := a.fleet.Size()
	if cur == 0 && a.cfg.Min > 0 {
		// Bootstrapping (or everything died and reap could not respawn):
		// force the floor.
		a.resize(now, a.cfg.Min, ewma)
		mDesiredReplicas.Set(int64(a.cfg.Min))
		mActualReplicas.Set(int64(a.fleet.Size()))
		return
	}

	desiredUp := int(math.Ceil(ewma / a.cfg.TargetOutstanding))
	if a.cfg.P99Ceiling > 0 && a.p99() > a.cfg.P99Ceiling && desiredUp <= cur {
		desiredUp = cur + 1
	}
	// The shrink target answers a stricter question: would the load still
	// fit with hysteresis headroom at the smaller size?
	desiredDown := int(math.Ceil(ewma * (1 + a.cfg.Hysteresis) / a.cfg.TargetOutstanding))
	desiredUp = clamp(desiredUp, a.cfg.Min, a.cfg.Max)
	desiredDown = clamp(desiredDown, a.cfg.Min, a.cfg.Max)

	switch {
	case desiredUp > cur && now.Sub(a.last(+1)) >= a.cfg.UpCooldown:
		a.resize(now, desiredUp, ewma)
	case desiredDown < cur && now.Sub(a.last(-1)) >= a.cfg.DownCooldown:
		a.resize(now, desiredDown, ewma)
	}
	mDesiredReplicas.Set(int64(desiredUp))
	mActualReplicas.Set(int64(a.fleet.Size()))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// last returns the reference time the cooldown for direction dir measures
// from: scale-ups pace against the previous up only (growth stays fast even
// right after a shrink), while scale-downs pace against the most recent
// scale of either direction — a shrink right after a growth is the
// definition of a flap, so the down-cooldown must gate it.
func (a *Autoscaler) last(dir int) time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	if dir > 0 {
		return a.lastUp
	}
	if a.lastUp.After(a.lastDown) {
		return a.lastUp
	}
	return a.lastDown
}

// resize moves the fleet to n and books the direction, cooldown stamp and —
// when this scale reverses the previous one on an unchanged load — a flap.
func (a *Autoscaler) resize(now time.Time, n int, ewma float64) {
	cur := a.fleet.Size()
	if n == cur {
		return
	}
	dir := +1
	if n < cur {
		dir = -1
	}
	if err := a.fleet.ScaleTo(n); err != nil {
		a.setErr(fmt.Sprintf("scale to %d: %v", n, err))
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	dirName := "up"
	if dir > 0 {
		a.lastUp = now
		a.scaleUps++
		mScaleUps.Inc()
	} else {
		a.lastDown = now
		a.scaleDowns++
		mScaleDowns.Inc()
		dirName = "down"
	}
	telemetry.Instant("autoscaler_scale", "dir", dirName, "from", strconv.Itoa(cur), "to", strconv.Itoa(n))
	if a.lastDir == -dir && now.Sub(a.lastDirAt) <= a.cfg.FlapWindow {
		ref := math.Max(math.Abs(a.lastDirLoad), 1)
		if math.Abs(ewma-a.lastDirLoad)/ref < a.cfg.FlapLoadDelta {
			a.flaps++
			mFlaps.Inc()
			telemetry.Instant("autoscaler_flap", "to", strconv.Itoa(n))
		}
	}
	a.lastDir, a.lastDirAt, a.lastDirLoad = dir, now, ewma
}

func (a *Autoscaler) setErr(msg string) {
	a.mu.Lock()
	a.lastErr = msg
	a.mu.Unlock()
}

// AutoscalerStatus is the loop's live view for the status endpoint.
type AutoscalerStatus struct {
	Min               int     `json:"min"`
	Max               int     `json:"max"`
	Size              int     `json:"size"`
	TargetOutstanding float64 `json:"target_outstanding"`
	EwmaOutstanding   float64 `json:"ewma_outstanding"`
	P99Ms             float64 `json:"p99_ms"`
	ScaleUps          int64   `json:"scale_ups"`
	ScaleDowns        int64   `json:"scale_downs"`
	Flaps             int64   `json:"flaps"`
	LastError         string  `json:"last_error,omitempty"`
}

// Status snapshots the loop.
func (a *Autoscaler) Status() AutoscalerStatus {
	p99 := a.p99()
	a.mu.Lock()
	defer a.mu.Unlock()
	return AutoscalerStatus{
		Min:               a.cfg.Min,
		Max:               a.cfg.Max,
		Size:              a.fleet.Size(),
		TargetOutstanding: a.cfg.TargetOutstanding,
		EwmaOutstanding:   a.ewma,
		P99Ms:             float64(p99) / float64(time.Millisecond),
		ScaleUps:          a.scaleUps,
		ScaleDowns:        a.scaleDowns,
		Flaps:             a.flaps,
		LastError:         a.lastErr,
	}
}
