package controlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// RolloutLoader turns a rollout request's checkpoint path into a model
// source — the deployment format is the caller's business (tfserve wires the
// linear-checkpoint loader).
type RolloutLoader func(path string) (ModelSource, error)

// rolloutRequest is the POST /controlz/rollout body.
type rolloutRequest struct {
	Model string `json:"model"`
	// Path is the checkpoint handed to the RolloutLoader.
	Path string `json:"path"`
	// Version tags the canary (<= 0: the loader's choice, e.g. the
	// checkpoint step).
	Version int `json:"version"`
}

// Handler serves the control-plane endpoints:
//
//	GET  /controlz          — aggregate status (autoscaler, fleet, rollout)
//	POST /controlz/rollout  — start a canary rollout from a checkpoint
//
// Mount it next to the serving front-end. loader may be nil, which disables
// the rollout endpoint (status-only control plane).
func (cp *ControlPlane) Handler(loader RolloutLoader) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/controlz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		b, err := cp.StatusJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/controlz/rollout", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if loader == nil {
			http.Error(w, "rollouts not enabled", http.StatusNotImplemented)
			return
		}
		var req rolloutRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad rollout request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Model == "" || req.Path == "" {
			http.Error(w, "rollout needs model and path", http.StatusBadRequest)
			return
		}
		src, err := loader(req.Path)
		if err != nil {
			http.Error(w, fmt.Sprintf("load %s: %v", req.Path, err), http.StatusBadRequest)
			return
		}
		ro, err := cp.StartRollout(req.Model, req.Version, src, RolloutConfig{})
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(ro.Status())
	})
	return mux
}
