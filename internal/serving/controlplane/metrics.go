package controlplane

import "tfhpc/internal/telemetry"

// armMetrics is one traffic arm's registry view — the monotonic complement
// of the monitor's sliding windows: per-arm request/error counters and a
// latency histogram /metricz consumers derive percentiles from (the windows
// keep answering the rollout's "right now" question).
type armMetrics struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
}

func newArmMetrics(arm string) *armMetrics {
	return &armMetrics{
		requests: telemetry.NewCounter("tfhpc_monitor_requests_total",
			"Request outcomes observed by the SLO monitor, by traffic arm.", "arm", arm),
		errors: telemetry.NewCounter("tfhpc_monitor_errors_total",
			"Errored requests observed by the SLO monitor, by traffic arm.", "arm", arm),
		latency: telemetry.NewHistogram("tfhpc_monitor_latency_seconds",
			"End-to-end request latency observed by the SLO monitor, by traffic arm.",
			telemetry.DurationBuckets, "arm", arm),
	}
}

var (
	mArmStable = newArmMetrics("stable")
	mArmCanary = newArmMetrics("canary")

	mScaleUps = telemetry.NewCounter("tfhpc_autoscaler_scale_ups_total",
		"Fleet scale-up decisions taken by the autoscaler.")
	mScaleDowns = telemetry.NewCounter("tfhpc_autoscaler_scale_downs_total",
		"Fleet scale-down decisions taken by the autoscaler.")
	mFlaps = telemetry.NewCounter("tfhpc_autoscaler_flaps_total",
		"Direction reversals on an unchanged load within the flap window.")
	mDesiredReplicas = telemetry.NewGauge("tfhpc_autoscaler_desired_replicas",
		"Replica count the autoscaler last computed from the load signal.")
	mActualReplicas = telemetry.NewGauge("tfhpc_autoscaler_actual_replicas",
		"Fleet size after the autoscaler's last tick.")

	mRolloutTransitions = telemetry.NewCounter("tfhpc_rollout_transitions_total",
		"Rollout state-machine transitions.")
)
