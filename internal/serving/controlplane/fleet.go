package controlplane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/rpc"
	"tfhpc/internal/serving"
	"tfhpc/internal/tensor"
)

// ModelSource builds a fresh ModelVersion under the given serving name and
// version. Every backend needs its own instance (a version binds a private
// session), and the same source serves weights under the default name or the
// canary alias — the fleet decides the name, the source the weights.
type ModelSource func(name string, version int) (*serving.ModelVersion, error)

// LinearSource adapts a weight vector into a ModelSource for the servable
// linear model family.
func LinearSource(w *tensor.Tensor) ModelSource {
	return func(name string, version int) (*serving.ModelVersion, error) {
		return serving.NewLinear(name, version, w)
	}
}

// CheckpointSource is a ModelSource that re-reads a SaveLinear checkpoint per
// backend. version <= 0 takes the checkpoint's step.
func CheckpointSource(path string) ModelSource {
	return func(name string, version int) (*serving.ModelVersion, error) {
		return serving.LoadLinear(name, version, path)
	}
}

// CanaryName is the serving alias a model's canary version loads under while
// a rollout is in flight.
func CanaryName(model string) string { return model + "@canary" }

// Backend is one running replica task a fleet manages.
type Backend interface {
	// Addr is the replica's dialable serving address.
	Addr() string
	// Service is the replica's local serving plane (model load/unload).
	Service() *serving.Service
	// Close tears the replica down.
	Close() error
}

// Spawner boots replica backends; the fleet calls it when scaling up or
// replacing a dead member.
type Spawner interface {
	Spawn(id int) (Backend, error)
}

// ClusterSpawner boots in-process cluster tasks: each replica is a
// cluster.Server on a loopback port with the serving endpoints attached —
// the same process shape tfserver uses, so fleet probes are ordinary
// cluster Health RPCs.
type ClusterSpawner struct {
	// Job names the replica tasks (default "replica").
	Job string
	// Batch applies to every replica's micro-batchers.
	Batch serving.BatchOptions
}

func (cs *ClusterSpawner) job() string {
	if cs.Job == "" {
		return "replica"
	}
	return cs.Job
}

// Spawn implements Spawner.
func (cs *ClusterSpawner) Spawn(id int) (Backend, error) {
	srv := cluster.NewServer(cs.job(), id)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	svc := serving.NewService(serving.NewRegistry(), cs.Batch)
	serving.Attach(srv, svc)
	return &clusterBackend{srv: srv, svc: svc, addr: addr}, nil
}

type clusterBackend struct {
	srv  *cluster.Server
	svc  *serving.Service
	addr string
}

func (b *clusterBackend) Addr() string              { return b.addr }
func (b *clusterBackend) Service() *serving.Service { return b.svc }
func (b *clusterBackend) Close() error {
	b.svc.Close()
	return b.srv.Close()
}

// FleetOptions tune the fleet's deploy and retire behavior.
type FleetOptions struct {
	// Warmup applies to every version before it attaches to traffic.
	Warmup WarmupConfig
	// DrainTimeout bounds how long a retiring replica may finish in-flight
	// requests before its connection closes anyway (default 5s).
	DrainTimeout time.Duration
	// ProbePolicy drives liveness and recovery probes (default: 2 attempts,
	// 20ms base backoff — a dead loopback task fails fast).
	ProbePolicy rpc.RetryPolicy
	// ProbeTimeout bounds one probe end to end (default 2s).
	ProbeTimeout time.Duration
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.ProbePolicy.Attempts <= 0 {
		o.ProbePolicy = rpc.RetryPolicy{Attempts: 2, Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	return o
}

// deployment is one arm's recipe: how to build the version any backend —
// present or future — must serve.
type deployment struct {
	source  ModelSource
	version int
}

// Fleet owns the replica set behind a router: it spawns warmed backends,
// retires them through the router's drain, replaces members that fail
// liveness probes, and keeps every backend serving the same model set
// (default arms plus any in-flight canary). All mutations serialize on one
// mutex — the autoscaler and rollout controller share the fleet safely.
type Fleet struct {
	router  *serving.Router
	spawner Spawner
	opts    FleetOptions
	job     string

	mu       sync.Mutex
	backends []Backend
	models   map[string]*deployment // default arm, by model name
	canaries map[string]*deployment // canary arm, by model name
	nextID   int

	spawned, retired, replaced atomic.Int64
	warmNanos                  atomic.Int64
}

// NewFleet builds a fleet over an (initially empty) router.
func NewFleet(router *serving.Router, spawner Spawner, opts FleetOptions) *Fleet {
	job := "replica"
	if cs, ok := spawner.(*ClusterSpawner); ok {
		job = cs.job()
	}
	return &Fleet{
		router:   router,
		spawner:  spawner,
		opts:     opts.withDefaults(),
		job:      job,
		models:   make(map[string]*deployment),
		canaries: make(map[string]*deployment),
	}
}

// Router returns the router the fleet feeds.
func (f *Fleet) Router() *serving.Router { return f.router }

// Size is the current backend count.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.backends)
}

// Addrs lists the backends' serving addresses.
func (f *Fleet) Addrs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.backends))
	for i, b := range f.backends {
		out[i] = b.Addr()
	}
	return out
}

// Counters reports lifetime spawn/retire/replace counts.
func (f *Fleet) Counters() (spawned, retired, replaced int64) {
	return f.spawned.Load(), f.retired.Load(), f.replaced.Load()
}

// SetModel installs (or hot-swaps) a model's default arm on every backend.
// Future backends serve it too.
func (f *Fleet) SetModel(model string, version int, src ModelSource) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dep := &deployment{source: src, version: version}
	for _, b := range f.backends {
		if err := f.serveOn(b, model, dep); err != nil {
			return err
		}
	}
	f.models[model] = dep
	return nil
}

// serveOn builds, warms and installs one arm's version on one backend.
// Warmup runs before ServeModel: the version joins the registry — and the
// pick set — only after its cold paths are paid, which is what gates
// readiness on warmup completion.
func (f *Fleet) serveOn(b Backend, name string, dep *deployment) error {
	mv, err := dep.source(name, dep.version)
	if err != nil {
		return fmt.Errorf("controlplane: build %s v%d: %w", name, dep.version, err)
	}
	warm, err := Warm(mv, f.opts.Warmup)
	f.warmNanos.Add(int64(warm))
	if err != nil {
		return err
	}
	_, err = b.Service().ServeModel(mv)
	return err
}

// spawnOneLocked boots one backend, deploys every arm, and routes it.
func (f *Fleet) spawnOneLocked() error {
	id := f.nextID
	f.nextID++
	b, err := f.spawner.Spawn(id)
	if err != nil {
		return err
	}
	for model, dep := range f.models {
		if err := f.serveOn(b, model, dep); err != nil {
			b.Close()
			return err
		}
	}
	// An in-flight canary must exist on every member: its traffic arm picks
	// replicas the same way the default arm does.
	for model, dep := range f.canaries {
		if err := f.serveOn(b, CanaryName(model), dep); err != nil {
			b.Close()
			return err
		}
	}
	if err := f.router.AddReplica(b.Addr()); err != nil {
		b.Close()
		return err
	}
	f.backends = append(f.backends, b)
	f.spawned.Add(1)
	return nil
}

// retireOneLocked drains and closes the newest backend (LIFO: the oldest
// members keep their warmed caches).
func (f *Fleet) retireOneLocked() error {
	if len(f.backends) == 0 {
		return fmt.Errorf("controlplane: no backend to retire")
	}
	b := f.backends[len(f.backends)-1]
	f.backends = f.backends[:len(f.backends)-1]
	if _, err := f.router.RemoveReplica(b.Addr(), f.opts.DrainTimeout); err != nil {
		b.Close()
		return err
	}
	f.retired.Add(1)
	return b.Close()
}

// ScaleTo grows or shrinks the fleet to n backends. Growth attaches fully
// warmed replicas; shrink drains through the router so no in-flight request
// is dropped.
func (f *Fleet) ScaleTo(n int) error {
	if n < 0 {
		return fmt.Errorf("controlplane: negative fleet size %d", n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.backends) < n {
		if err := f.spawnOneLocked(); err != nil {
			return err
		}
	}
	for len(f.backends) > n {
		if err := f.retireOneLocked(); err != nil {
			return err
		}
	}
	return nil
}

// DeployCanary loads a model's canary version (under CanaryName) on every
// backend, warmed before attach. The router split is the caller's move —
// deploy and traffic-attach are separate steps.
func (f *Fleet) DeployCanary(model string, version int, src ModelSource) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.models[model]; !ok {
		return fmt.Errorf("controlplane: no default deployment for %s", model)
	}
	dep := &deployment{source: src, version: version}
	for _, b := range f.backends {
		if err := f.serveOn(b, CanaryName(model), dep); err != nil {
			return err
		}
	}
	f.canaries[model] = dep
	return nil
}

// PromoteCanary hot-swaps the canary's weights in as the model's default
// version on every backend (the registry's swap: in-flight requests on the
// old version drain, new requests see the new one). The canary alias keeps
// serving until RemoveCanary — callers clear the split first, wait out
// stragglers, then remove.
func (f *Fleet) PromoteCanary(model string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dep, ok := f.canaries[model]
	if !ok {
		return fmt.Errorf("controlplane: no canary deployed for %s", model)
	}
	for _, b := range f.backends {
		if err := f.serveOn(b, model, dep); err != nil {
			return err
		}
	}
	f.models[model] = dep
	return nil
}

// RemoveCanary unloads a model's canary alias everywhere (after promote or
// rollback). In-flight canary requests drain through the registry's refs.
func (f *Fleet) RemoveCanary(model string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.canaries, model)
	for _, b := range f.backends {
		b.Service().Registry().Unload(CanaryName(model))
	}
}

// CanaryVersion reports the in-flight canary's version, if any.
func (f *Fleet) CanaryVersion(model string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dep, ok := f.canaries[model]
	if !ok {
		return 0, false
	}
	return dep.version, true
}

// peers builds a Peers view of the current membership for Health probing.
func (f *Fleet) peers(addrs []string) *cluster.Peers {
	return cluster.NewPeers(cluster.Spec{f.job: addrs})
}

// probe checks one member's liveness with the fleet's retry policy.
func (f *Fleet) probe(p *cluster.Peers, task int) error {
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.ProbeTimeout)
	defer cancel()
	return p.HealthRetry(ctx, f.job, task, f.opts.ProbePolicy)
}

// ReapDead probes every member (the Coordinator's liveness probe, reused:
// Health RPCs under a retry policy) and replaces the ones that fail —
// membership shrank underneath us, so re-balance back to the size we had.
// Returns how many members were replaced.
func (f *Fleet) ReapDead() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	addrs := make([]string, len(f.backends))
	for i, b := range f.backends {
		addrs[i] = b.Addr()
	}
	if len(addrs) == 0 {
		return 0, nil
	}
	p := f.peers(addrs)
	defer p.Close()
	var dead []int
	for i := range addrs {
		if f.probe(p, i) != nil {
			dead = append(dead, i)
		}
	}
	if len(dead) == 0 {
		return 0, nil
	}
	// Remove the casualties (reverse order keeps indices valid), then grow
	// back to the size the fleet had.
	want := len(f.backends)
	for j := len(dead) - 1; j >= 0; j-- {
		i := dead[j]
		b := f.backends[i]
		f.backends = append(f.backends[:i], f.backends[i+1:]...)
		// The backend is dead: a drain would only time out, so remove with
		// no drain budget and close what's left of it.
		f.router.RemoveReplica(b.Addr(), 0)
		b.Close()
	}
	var firstErr error
	for len(f.backends) < want {
		if err := f.spawnOneLocked(); err != nil {
			firstErr = err
			break
		}
		f.replaced.Add(1)
	}
	return len(dead), firstErr
}

// UnbenchRecovered health-probes every benched replica and paroles the ones
// answering again — the un-bench path the router itself doesn't have: the
// bench is failure-driven, recovery is health-driven (Peers.HealthRetry).
// Returns the recovered addresses.
func (f *Fleet) UnbenchRecovered() []string {
	benched := f.router.Benched()
	if len(benched) == 0 {
		return nil
	}
	f.mu.Lock()
	member := make(map[string]bool, len(f.backends))
	for _, b := range f.backends {
		member[b.Addr()] = true
	}
	f.mu.Unlock()
	var probeList []string
	for _, a := range benched {
		if member[a] {
			probeList = append(probeList, a)
		}
	}
	if len(probeList) == 0 {
		return nil
	}
	p := f.peers(probeList)
	defer p.Close()
	var recovered []string
	for i, a := range probeList {
		if f.probe(p, i) == nil {
			f.router.Unbench(a)
			recovered = append(recovered, a)
		}
	}
	return recovered
}

// Close retires every backend (with drain) and releases the router.
func (f *Fleet) Close() {
	f.mu.Lock()
	backends := f.backends
	f.backends = nil
	f.mu.Unlock()
	for _, b := range backends {
		f.router.RemoveReplica(b.Addr(), f.opts.DrainTimeout)
		b.Close()
	}
}
