package controlplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/serving"
)

func testFleet(t *testing.T, n int) (*Fleet, *serving.Router) {
	t.Helper()
	router, err := serving.NewRouter(nil, serving.RouterOptions{BenchUntilHealthy: true})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(router, &ClusterSpawner{Batch: serving.BatchOptions{Timeout: 200 * time.Microsecond}},
		FleetOptions{Warmup: WarmupConfig{Rounds: 1, MaxBatch: 4}, DrainTimeout: 2 * time.Second})
	if err := fleet.SetModel("m", 1, LinearSource(testWeights(16, 1))); err != nil {
		t.Fatal(err)
	}
	if err := fleet.ScaleTo(n); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close(); router.Close() })
	return fleet, router
}

// Scaling up and down under live traffic must never drop a request: growth
// attaches warmed replicas, shrink drains through the router.
func TestFleetScaleUnderTraffic(t *testing.T) {
	fleet, router := testFleet(t, 1)

	var stop atomic.Bool
	var sent, failed atomic.Int64
	var wg sync.WaitGroup
	row := testBatch(1, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				sent.Add(1)
				if _, err := router.Predict("m", row, time.Now().Add(2*time.Second)); err != nil {
					failed.Add(1)
					t.Errorf("predict under scaling failed: %v", err)
					return
				}
			}
		}()
	}

	for _, n := range []int{3, 1, 2} {
		if err := fleet.ScaleTo(n); err != nil {
			t.Fatalf("scale to %d: %v", n, err)
		}
		if got := router.NumReplicas(); got != n {
			t.Fatalf("router has %d replicas after ScaleTo(%d)", got, n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d/%d requests failed during scaling", failed.Load(), sent.Load())
	}
	if sent.Load() == 0 {
		t.Fatal("no traffic flowed")
	}
	spawned, retired, _ := fleet.Counters()
	if spawned < 4 || retired < 2 {
		t.Fatalf("unexpected lifecycle counters: spawned=%d retired=%d", spawned, retired)
	}
}

// A member that dies is detected by the liveness probe and replaced, keeping
// the fleet at its size — the shrink-rebalance contract.
func TestFleetReapDeadReplaces(t *testing.T) {
	fleet, router := testFleet(t, 2)

	// Kill one backend's server out from under the fleet (the service stays,
	// the endpoint is gone — exactly what a crashed task looks like).
	fleet.mu.Lock()
	victim := fleet.backends[1].(*clusterBackend)
	fleet.mu.Unlock()
	victim.srv.Close()

	replaced, err := fleet.ReapDead()
	if err != nil {
		t.Fatalf("reap: %v", err)
	}
	if replaced != 1 {
		t.Fatalf("reaped %d members, want 1", replaced)
	}
	if fleet.Size() != 2 || router.NumReplicas() != 2 {
		t.Fatalf("fleet did not respawn to size 2: fleet=%d router=%d", fleet.Size(), router.NumReplicas())
	}
	if _, _, rep := fleet.Counters(); rep != 1 {
		t.Fatalf("replaced counter = %d, want 1", rep)
	}
	out, err := router.Predict("m", testBatch(1, 16), time.Now().Add(2*time.Second))
	if err != nil || out == nil {
		t.Fatalf("predict after reap: %v", err)
	}
}

// A replica benched by a transport failure rejoins the pick set once a
// health probe answers again: Peers.HealthRetry drives Unbench.
func TestFleetUnbenchRecovered(t *testing.T) {
	fleet, router := testFleet(t, 2)

	fleet.mu.Lock()
	victim := fleet.backends[0].(*clusterBackend)
	fleet.mu.Unlock()
	addr := victim.addr
	victim.srv.Close()

	// Drive traffic until the dead replica is benched (BenchUntilHealthy:
	// it stays benched however long recovery takes).
	row := testBatch(1, 16)
	deadlineAt := time.Now().Add(5 * time.Second)
	for len(router.Benched()) == 0 {
		if time.Now().After(deadlineAt) {
			t.Fatal("dead replica never got benched")
		}
		if _, err := router.Predict("m", row, time.Now().Add(time.Second)); err != nil {
			t.Fatalf("predict should fail over, got %v", err)
		}
	}
	if got := router.Benched(); len(got) != 1 || got[0] != addr {
		t.Fatalf("benched = %v, want [%s]", got, addr)
	}

	// Probe while still dead: nobody recovers, the bench holds.
	if rec := fleet.UnbenchRecovered(); len(rec) != 0 {
		t.Fatalf("recovered %v while endpoint is down", rec)
	}

	// Resurrect the endpoint on the same address and re-serve the model.
	srv2 := cluster.NewServer("replica", 99)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()
	svc2 := serving.NewService(serving.NewRegistry(), serving.BatchOptions{Timeout: 200 * time.Microsecond})
	serving.Attach(srv2, svc2)
	mv, err := serving.NewLinear("m", 1, testWeights(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.ServeModel(mv); err != nil {
		t.Fatal(err)
	}

	rec := fleet.UnbenchRecovered()
	if len(rec) != 1 || rec[0] != addr {
		t.Fatalf("recovered = %v, want [%s]", rec, addr)
	}
	if len(router.Benched()) != 0 {
		t.Fatalf("replica still benched after recovery: %v", router.Benched())
	}
}
