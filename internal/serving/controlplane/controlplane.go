// Package controlplane is the serving fleet's self-management layer: an
// autoscaler that closes the loop from the router's live load signals to the
// replica count, a canary rollout controller that steps a traffic-split on
// SLO hold and auto-rolls back on breach, and a warmup stage that keeps cold
// costs off the first real request. It is the operability tier production
// model servers (TF-Serving, KServe) put on top of a static deployment:
//
//	         ┌───────────── ControlPlane ─────────────┐
//	         │  Autoscaler ──ScaleTo──▶ Fleet          │
//	         │      ▲                   │ spawn/drain  │
//	         │      │ load, p99         ▼              │
//	traffic ─┼─▶ Router ◀──add/remove── backends       │
//	         │      │ Observer                         │
//	         │      ▼                                  │
//	         │  Monitor ──SLO window──▶ Rollout        │
//	         │                           │ split %     │
//	         │                           ▼             │
//	         │                        Router.SetSplit  │
//	         └─────────────────────────────────────────┘
//
// The contract under all of it: no request is ever dropped by a control
// action. Retire drains through the router, canary detach waits out rewritten
// requests before unload, and promote is the registry's hot-swap.
package controlplane

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/serving"
)

// Config assembles a control plane.
type Config struct {
	// Batch applies to every replica's micro-batchers.
	Batch serving.BatchOptions
	// Router tunes the fronting router. BenchUntilHealthy is forced on —
	// the control plane owns health probing — and Observer is chained onto
	// the monitor.
	Router serving.RouterOptions
	// Warmup applies to every version before traffic-attach.
	Warmup WarmupConfig
	// Autoscaler bounds and paces the replica loop.
	Autoscaler AutoscalerConfig
	// Rollout defaults apply to StartRollout calls.
	Rollout RolloutConfig
	// Window is the SLO window span (default 30s; smokes use shorter).
	Window time.Duration
	// Job names the replica tasks (default "replica").
	Job string
	// DrainTimeout bounds replica retirement (default 5s).
	DrainTimeout time.Duration
	// Spawner overrides replica creation (default: in-process
	// ClusterSpawner — loopback cluster tasks).
	Spawner Spawner
}

// ControlPlane owns a router, the fleet behind it, the SLO monitor and the
// autoscaler, and runs at most one rollout at a time.
type ControlPlane struct {
	router          *serving.Router
	fleet           *Fleet
	monitor         *Monitor
	autoscaler      *Autoscaler
	rolloutDefaults RolloutConfig

	mu      sync.Mutex
	rollout *Rollout
	started bool
	closed  bool
}

// New assembles a control plane; Start boots the fleet and control loop.
func New(cfg Config) (*ControlPlane, error) {
	monitor := NewMonitor(cfg.Window)
	ropts := cfg.Router
	ropts.BenchUntilHealthy = true
	userObs := ropts.Observer
	ropts.Observer = func(model string, canary bool, latency time.Duration, err error) {
		monitor.Observe(model, canary, latency, err)
		if userObs != nil {
			userObs(model, canary, latency, err)
		}
	}
	router, err := serving.NewRouter(nil, ropts)
	if err != nil {
		return nil, err
	}
	spawner := cfg.Spawner
	if spawner == nil {
		spawner = &ClusterSpawner{Job: cfg.Job, Batch: cfg.Batch}
	}
	fleet := NewFleet(router, spawner, FleetOptions{
		Warmup:       cfg.Warmup,
		DrainTimeout: cfg.DrainTimeout,
	})
	cp := &ControlPlane{
		router:  router,
		fleet:   fleet,
		monitor: monitor,
	}
	cp.autoscaler = NewAutoscaler(fleet, monitor, cfg.Autoscaler)
	cp.rolloutDefaults = cfg.Rollout
	return cp, nil
}

// Router is the control plane's Predictor — put it behind the HTTP/binary
// front-ends.
func (cp *ControlPlane) Router() *serving.Router { return cp.router }

// Fleet exposes the replica set (deploys, manual scaling).
func (cp *ControlPlane) Fleet() *Fleet { return cp.fleet }

// Monitor exposes the SLO windows.
func (cp *ControlPlane) Monitor() *Monitor { return cp.monitor }

// Autoscaler exposes the scaling loop.
func (cp *ControlPlane) Autoscaler() *Autoscaler { return cp.autoscaler }

// Start boots the fleet to the autoscaler's floor and starts the control
// loop. Deploy models (Fleet().SetModel) before or after — future backends
// pick up deployments either way.
func (cp *ControlPlane) Start() error {
	cp.mu.Lock()
	if cp.started || cp.closed {
		cp.mu.Unlock()
		return fmt.Errorf("controlplane: already started or closed")
	}
	cp.started = true
	cp.mu.Unlock()
	if err := cp.fleet.ScaleTo(cp.autoscaler.cfg.Min); err != nil {
		return err
	}
	cp.autoscaler.Start()
	return nil
}

// StartRollout begins a canary rollout of (version, src) for model, paced by
// the config defaults overlaid with cfg's non-zero fields. One rollout at a
// time: a second call while one is live returns an error.
func (cp *ControlPlane) StartRollout(model string, version int, src ModelSource, cfg RolloutConfig) (*Rollout, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.closed {
		return nil, fmt.Errorf("controlplane: closed")
	}
	if cp.rollout != nil {
		if _, terminal := cp.rollout.Terminal(); !terminal {
			return nil, fmt.Errorf("controlplane: a rollout of %s is already in flight", cp.rollout.model)
		}
	}
	merged := mergeRollout(cp.rolloutDefaults, cfg)
	ro := newRollout(cp.fleet, cp.monitor, model, version, src, merged)
	cp.rollout = ro
	go ro.run()
	return ro, nil
}

// mergeRollout overlays override's non-zero fields onto base.
func mergeRollout(base, override RolloutConfig) RolloutConfig {
	out := base
	if len(override.Steps) > 0 {
		out.Steps = override.Steps
	}
	if override.Hold > 0 {
		out.Hold = override.Hold
	}
	if override.MinSamples > 0 {
		out.MinSamples = override.MinSamples
	}
	if override.SampleGrace > 0 {
		out.SampleGrace = override.SampleGrace
	}
	if override.MaxP99 > 0 {
		out.MaxP99 = override.MaxP99
	}
	if override.MaxErrorRate > 0 {
		out.MaxErrorRate = override.MaxErrorRate
	}
	if override.RemoveGrace > 0 {
		out.RemoveGrace = override.RemoveGrace
	}
	if override.Poll > 0 {
		out.Poll = override.Poll
	}
	return out
}

// Rollout returns the most recent rollout (live or terminal), if any.
func (cp *ControlPlane) Rollout() *Rollout {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.rollout
}

// Status is the control plane's aggregate live view.
type Status struct {
	Autoscaler AutoscalerStatus `json:"autoscaler"`
	Replicas   []string         `json:"replicas"`
	Benched    []string         `json:"benched,omitempty"`
	Spawned    int64            `json:"spawned"`
	Retired    int64            `json:"retired"`
	Replaced   int64            `json:"replaced"`
	Requests   int64            `json:"requests"`
	Errors     int64            `json:"errors"`
	Rollout    *RolloutStatus   `json:"rollout,omitempty"`
}

// Status snapshots the whole control plane.
func (cp *ControlPlane) Status() Status {
	spawned, retired, replaced := cp.fleet.Counters()
	total, _, _, errs := cp.monitor.Totals()
	st := Status{
		Autoscaler: cp.autoscaler.Status(),
		Replicas:   cp.router.ReplicaAddrs(),
		Benched:    cp.router.Benched(),
		Spawned:    spawned,
		Retired:    retired,
		Replaced:   replaced,
		Requests:   total,
		Errors:     errs,
	}
	if ro := cp.Rollout(); ro != nil {
		rs := ro.Status()
		st.Rollout = &rs
	}
	return st
}

// StatusJSON renders Status.
func (cp *ControlPlane) StatusJSON() ([]byte, error) {
	return json.Marshal(cp.Status())
}

// Close stops the autoscaler, waits out a live rollout's terminal state (it
// finishes its current action and the canary detaches), and retires the
// fleet with drains.
func (cp *ControlPlane) Close() {
	cp.mu.Lock()
	if cp.closed {
		cp.mu.Unlock()
		return
	}
	cp.closed = true
	ro := cp.rollout
	cp.mu.Unlock()
	cp.autoscaler.Close()
	if ro != nil {
		<-ro.Done()
	}
	cp.fleet.Close()
	cp.router.Close()
}
