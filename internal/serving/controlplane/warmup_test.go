package controlplane

import (
	"bytes"
	"math"
	"testing"

	"tfhpc/internal/serving"
	"tfhpc/internal/tensor"
)

func testWeights(d int, scale float32) *tensor.Tensor {
	vals := make([]float32, d)
	for i := range vals {
		vals[i] = scale * float32(i+1) / float32(d)
	}
	return tensor.FromF32(tensor.Shape{d}, vals)
}

func testBatch(n, d int) *tensor.Tensor {
	rng := tensor.NewRNG(7)
	vals := make([]float32, n*d)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	return tensor.FromF32(tensor.Shape{n, d}, vals)
}

// Warmup must be pure heat: a warmed version answers bit-identically to a
// cold one — versions are immutable, synthetic traffic cannot perturb them.
func TestWarmDoesNotPerturbNumerics(t *testing.T) {
	w := testWeights(32, 1)
	in := testBatch(8, 32)

	cold, err := serving.NewLinear("m", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Predict(in)
	if err != nil {
		t.Fatal(err)
	}

	warmed, err := serving.NewLinear("m", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Warm(warmed, WarmupConfig{Rounds: 3, MaxBatch: 64})
	if err != nil {
		t.Fatalf("warmup: %v", err)
	}
	if d <= 0 {
		t.Fatalf("warmup reported no elapsed time")
	}
	got, err := warmed.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tensorBytes(t, got), tensorBytes(t, want)) {
		t.Fatalf("warmed model output differs from cold model output")
	}
}

// tensorBytes renders the exact bit patterns, so equality means bitwise
// identity, not a decimal rendering's idea of it.
func tensorBytes(t *testing.T, ts *tensor.Tensor) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, v := range ts.F32() {
		bits := math.Float32bits(v)
		buf.Write([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)})
	}
	return buf.Bytes()
}

func TestWarmDisabled(t *testing.T) {
	w := testWeights(8, 1)
	mv, err := serving.NewLinear("m", 1, w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Warm(mv, WarmupConfig{Disable: true})
	if err != nil || d != 0 {
		t.Fatalf("disabled warmup ran: d=%v err=%v", d, err)
	}
}
