package controlplane

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tfhpc/internal/graph"
	"tfhpc/internal/ops"
	"tfhpc/internal/serving"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// faultCtl is the shared fault seam: the CtlFaultGate op consults it on
// every execution. Tests arm it with a simnet.FaultPlan mid-step, turning
// the canary bad exactly the way a real regression would — inside the
// serving path, visible only through the SLO window.
var faultCtl struct {
	mu    sync.Mutex
	plan  simnet.FaultPlan
	calls int
}

func setFaultPlan(p simnet.FaultPlan) {
	faultCtl.mu.Lock()
	faultCtl.plan = p
	faultCtl.calls = 0
	faultCtl.mu.Unlock()
}

func init() {
	faultCtl.plan = simnet.NewFaultPlan()
	// The gate passes its input through untouched; the fault plan decides
	// per-call latency (LinkDelay/SlowBy) and failure (DropRank 0 drops
	// every call past DropAfterSends). Stateful: never pruned or cached.
	ops.Register(&ops.OpDef{Name: "CtlFaultGate", MinInputs: 1, MaxInputs: 1, Stateful: true,
		Kernel: func(ctx *ops.Context, in []*tensor.Tensor) (*tensor.Tensor, error) {
			faultCtl.mu.Lock()
			faultCtl.calls++
			p, n := faultCtl.plan, faultCtl.calls
			faultCtl.mu.Unlock()
			if d := p.SendDelay(0); d > 0 {
				time.Sleep(d)
			}
			if p.ShouldDrop(0, n) {
				return nil, fmt.Errorf("ctlfault: injected failure (call %d)", n)
			}
			return in[0], nil
		}})
}

// faultySource builds a linear model with the fault gate spliced between
// input and MatVec — numerically identical to LinearSource until a plan is
// armed.
func faultySource(w *tensor.Tensor) ModelSource {
	return func(name string, version int) (*serving.ModelVersion, error) {
		g := graph.New()
		in := g.Placeholder("input", w.DType(), nil)
		gate := g.AddNamedOp("gate", "CtlFaultGate", nil, in)
		wv := g.AddNamedOp("w", "Variable", graph.Attrs{"var_name": "w"})
		g.AddNamedOp("output", "MatVec", nil, gate, wv)
		sig := serving.Signature{InputName: "input", OutputName: "output",
			Features: w.Shape()[0], DType: w.DType()}
		return serving.NewModelVersion(name, version, g, sig, map[string]*tensor.Tensor{"w": w})
	}
}

// loadDriver drives a closed-loop request stream at the control plane's
// router, with exact accounting: every request sent gets exactly one
// outcome, counted once.
type loadDriver struct {
	stop   atomic.Bool
	sent   atomic.Int64
	ok     atomic.Int64
	failed atomic.Int64
	wg     sync.WaitGroup
}

func startLoad(cp *ControlPlane, workers, features int) *loadDriver {
	ld := &loadDriver{}
	row := testBatch(1, features)
	for i := 0; i < workers; i++ {
		ld.wg.Add(1)
		go func() {
			defer ld.wg.Done()
			for !ld.stop.Load() {
				ld.sent.Add(1)
				if _, err := cp.Router().Predict("m", row, time.Now().Add(3*time.Second)); err != nil {
					ld.failed.Add(1)
				} else {
					ld.ok.Add(1)
				}
			}
		}()
	}
	return ld
}

func (ld *loadDriver) halt() (sent, ok, failed int64) {
	ld.stop.Store(true)
	ld.wg.Wait()
	return ld.sent.Load(), ld.ok.Load(), ld.failed.Load()
}

func testControlPlane(t *testing.T, replicas int) *ControlPlane {
	t.Helper()
	cp, err := New(Config{
		Batch:  serving.BatchOptions{Timeout: 200 * time.Microsecond},
		Warmup: WarmupConfig{Rounds: 1, MaxBatch: 4},
		Autoscaler: AutoscalerConfig{
			Min: replicas, Max: replicas, Tick: 50 * time.Millisecond,
		},
		Window:       10 * time.Second,
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Fleet().SetModel("m", 1, LinearSource(testWeights(16, 1))); err != nil {
		t.Fatal(err)
	}
	if err := cp.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cp.Close)
	return cp
}

func awaitRollout(t *testing.T, ro *Rollout, timeout time.Duration) string {
	t.Helper()
	select {
	case <-ro.Done():
	case <-time.After(timeout):
		t.Fatalf("rollout stuck in state %q", ro.Status().State)
	}
	state, _ := ro.Terminal()
	return state
}

// A healthy canary walks every step and promotes: the default arm ends up
// serving the canary's version via the registry hot-swap, the split clears,
// the alias unloads — all with zero failed requests.
func TestRolloutPromotesHealthyCanary(t *testing.T) {
	setFaultPlan(simnet.NewFaultPlan())
	cp := testControlPlane(t, 2)
	ld := startLoad(cp, 6, 16)

	ro, err := cp.StartRollout("m", 2, LinearSource(testWeights(16, 2)), RolloutConfig{
		Steps: []int{25, 100}, Hold: 250 * time.Millisecond, MinSamples: 10,
		MaxP99: 5 * time.Second, MaxErrorRate: 0.5,
		RemoveGrace: 100 * time.Millisecond, Poll: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if state := awaitRollout(t, ro, 30*time.Second); state != StatePromoted {
		t.Fatalf("state=%q reason=%q, want promoted", state, ro.Status().Reason)
	}
	sent, ok, failed := ld.halt()

	if failed != 0 {
		t.Fatalf("%d/%d requests failed during a healthy rollout", failed, sent)
	}
	if sent != ok {
		t.Fatalf("accounting: sent=%d ok=%d", sent, ok)
	}
	total, defOK, canOK, errs := cp.Monitor().Totals()
	if total != sent || defOK+canOK+errs != total {
		t.Fatalf("monitor ledger: total=%d (sent %d) defOK=%d canOK=%d errs=%d",
			total, sent, defOK, canOK, errs)
	}
	if canOK == 0 {
		t.Fatal("no request ever reached the canary arm")
	}
	if _, _, live := cp.Router().SplitOf("m"); live {
		t.Fatal("split survived promotion")
	}
	for _, ms := range cp.Router().Models() {
		if ms.Name == "m" && ms.Version != 2 {
			t.Fatalf("default arm still v%d after promote", ms.Version)
		}
		if ms.Name == CanaryName("m") {
			t.Fatal("canary alias survived promotion")
		}
	}
}

// rollbackInvariants asserts what auto-rollback must restore, for either
// breach flavor: terminal rolled-back state, no split, canary alias gone,
// default arm at v1, and — after the rollback — 100% default traffic that
// all succeeds. The ledger must balance exactly: no request lost, none
// double-counted.
func rollbackInvariants(t *testing.T, cp *ControlPlane, ld *loadDriver, wantReason string) {
	t.Helper()
	ro := cp.Rollout()
	if state, _ := ro.Terminal(); state != StateRolledBack {
		t.Fatalf("state=%q, want rolled-back", state)
	}
	if reason := ro.Status().Reason; !strings.Contains(reason, wantReason) {
		t.Fatalf("rollback reason %q does not mention %q", reason, wantReason)
	}
	if _, _, live := cp.Router().SplitOf("m"); live {
		t.Fatal("split survived rollback")
	}

	// Post-rollback traffic: all default, all successful.
	_, _, canBefore, _ := cp.Monitor().Totals()
	row := testBatch(1, 16)
	for i := 0; i < 50; i++ {
		if _, err := cp.Router().Predict("m", row, time.Now().Add(2*time.Second)); err != nil {
			t.Fatalf("post-rollback predict %d failed: %v", i, err)
		}
	}
	_, _, canAfter, _ := cp.Monitor().Totals()
	if canAfter != canBefore {
		t.Fatalf("canary arm still taking traffic after rollback: %d → %d", canBefore, canAfter)
	}

	sent, ok, failed := ld.halt()
	if ok+failed != sent {
		t.Fatalf("accounting: sent=%d but ok+failed=%d — a request was lost or double-counted", sent, ok+failed)
	}
	total, defOK, canOK, errs := cp.Monitor().Totals()
	// The monitor saw the driver's requests plus the 50 probes above.
	if total != sent+50 || defOK+canOK+errs != total {
		t.Fatalf("monitor ledger off: total=%d sent=%d defOK=%d canOK=%d errs=%d",
			total, sent, defOK, canOK, errs)
	}
	for _, ms := range cp.Router().Models() {
		if ms.Name == "m" && ms.Version != 1 {
			t.Fatalf("default arm at v%d after rollback, want 1", ms.Version)
		}
		if ms.Name == CanaryName("m") {
			t.Fatal("canary alias survived rollback")
		}
	}
}

// awaitHolding waits until the rollout is measuring a step — the moment to
// arm the fault plan so the breach lands mid-step.
func awaitHolding(t *testing.T, ro *Rollout) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ro.Status()
		if st.State == StateHolding {
			return
		}
		if _, terminal := ro.Terminal(); terminal || time.Now().After(deadline) {
			t.Fatalf("rollout never reached holding: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Latency fault injected mid-step: the canary's p99 breaches the ceiling
// and the controller auto-rolls back to 100% default traffic.
func TestRolloutRollsBackOnLatencyBreach(t *testing.T) {
	setFaultPlan(simnet.NewFaultPlan())
	t.Cleanup(func() { setFaultPlan(simnet.NewFaultPlan()) })
	cp := testControlPlane(t, 2)
	ld := startLoad(cp, 6, 16)

	ro, err := cp.StartRollout("m", 2, faultySource(testWeights(16, 2)), RolloutConfig{
		Steps: []int{40}, Hold: 400 * time.Millisecond, MinSamples: 8,
		MaxP99: 60 * time.Millisecond, MaxErrorRate: 0.99,
		RemoveGrace: 150 * time.Millisecond, Poll: 20 * time.Millisecond,
		SampleGrace: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitHolding(t, ro)
	// Mid-step: every canary call now pays 150ms — the SLO window must
	// notice and the controller must pull the plug on its own.
	plan := simnet.NewFaultPlan()
	plan.LinkDelay = 150 * time.Millisecond
	setFaultPlan(plan)

	if state := awaitRollout(t, ro, 30*time.Second); state != StateRolledBack {
		t.Fatalf("state=%q, want rolled-back", state)
	}
	setFaultPlan(simnet.NewFaultPlan())
	rollbackInvariants(t, cp, ld, "p99")
}

// Error fault injected mid-step: canary requests start failing, the error
// rate breaches, and rollback restores an all-default, all-success fleet.
func TestRolloutRollsBackOnErrorBreach(t *testing.T) {
	setFaultPlan(simnet.NewFaultPlan())
	t.Cleanup(func() { setFaultPlan(simnet.NewFaultPlan()) })
	cp := testControlPlane(t, 2)
	ld := startLoad(cp, 6, 16)

	ro, err := cp.StartRollout("m", 2, faultySource(testWeights(16, 2)), RolloutConfig{
		Steps: []int{40}, Hold: 400 * time.Millisecond, MinSamples: 8,
		MaxP99: 10 * time.Second, MaxErrorRate: 0.1,
		RemoveGrace: 150 * time.Millisecond, Poll: 20 * time.Millisecond,
		SampleGrace: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitHolding(t, ro)
	// Mid-step: the canary dies after 2 more calls — every call past that
	// errors, exactly like a bad weight file would.
	plan := simnet.NewFaultPlan()
	plan.DropRank = 0
	plan.DropAfterSends = 2
	setFaultPlan(plan)

	if state := awaitRollout(t, ro, 30*time.Second); state != StateRolledBack {
		t.Fatalf("state=%q, want rolled-back", state)
	}
	setFaultPlan(simnet.NewFaultPlan())

	if _, _, _, errs := cp.Monitor().Totals(); errs == 0 {
		t.Fatal("error breach test observed no errors")
	}
	rollbackInvariants(t, cp, ld, "error rate")
}

// A second rollout while one is live must be refused; after the first one
// finishes, a new one may start.
func TestRolloutOneAtATime(t *testing.T) {
	setFaultPlan(simnet.NewFaultPlan())
	cp := testControlPlane(t, 1)
	ld := startLoad(cp, 4, 16)

	cfg := RolloutConfig{
		Steps: []int{100}, Hold: 200 * time.Millisecond, MinSamples: 5,
		MaxP99: 5 * time.Second, MaxErrorRate: 0.5,
		RemoveGrace: 50 * time.Millisecond, Poll: 20 * time.Millisecond,
	}
	ro, err := cp.StartRollout("m", 2, LinearSource(testWeights(16, 2)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.StartRollout("m", 3, LinearSource(testWeights(16, 3)), cfg); err == nil {
		t.Fatal("second concurrent rollout was accepted")
	}
	if state := awaitRollout(t, ro, 30*time.Second); state != StatePromoted {
		t.Fatalf("state=%q, want promoted", state)
	}
	ld.halt()
	ro2, err := cp.StartRollout("m", 3, LinearSource(testWeights(16, 3)), cfg)
	if err != nil {
		t.Fatalf("rollout after terminal state refused: %v", err)
	}
	// No traffic: the starving canary must roll back, not promote.
	if state := awaitRollout(t, ro2, 30*time.Second); state != StateRolledBack {
		t.Fatalf("starved rollout state=%q, want rolled-back", state)
	}
	if reason := ro2.Status().Reason; !strings.Contains(reason, "starved") {
		t.Fatalf("starved rollout reason %q", reason)
	}
}
