package controlplane

import (
	"fmt"
	"time"

	"tfhpc/internal/serving"
	"tfhpc/internal/tensor"
)

// WarmupConfig sizes the synthetic traffic pushed through a version between
// load and traffic-attach.
type WarmupConfig struct {
	// Rounds repeats the batch-size ladder (default 2): the first round pays
	// every cold cost, the second proves the paths are warm.
	Rounds int
	// MaxBatch is the top of the geometric batch-size ladder 1,2,4,...
	// (default 32 — the batcher's default flush threshold, so the largest
	// shape real traffic coalesces into is pre-run too).
	MaxBatch int
	// Disable skips warmup entirely (tests, or models too large to warm).
	Disable bool
}

func (c WarmupConfig) withDefaults() WarmupConfig {
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	return c
}

// Warm runs synthetic batches through mv before it is attached to traffic,
// so the first real request never pays cold-start costs (plan construction,
// pool population, lazily-built kernels). The rows are deterministic
// pseudo-random values in [0,1): warmup must exercise the arithmetic paths,
// and the outputs are discarded — a version's numerics are immutable, so
// warming cannot perturb later answers (asserted by tests). Returns the
// wall time spent.
func Warm(mv *serving.ModelVersion, cfg WarmupConfig) (time.Duration, error) {
	cfg = cfg.withDefaults()
	if cfg.Disable {
		return 0, nil
	}
	sig := mv.Signature()
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		for n := 1; n <= cfg.MaxBatch; n *= 2 {
			in := warmupBatch(sig, n, uint64(round+1))
			if _, err := mv.Predict(in); err != nil {
				return time.Since(start), fmt.Errorf("controlplane: warmup %s v%d batch %d: %w",
					mv.Model(), mv.Version(), n, err)
			}
		}
	}
	return time.Since(start), nil
}

// warmupBatch builds a deterministic [n, features] tensor of the signature's
// dtype.
func warmupBatch(sig serving.Signature, n int, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(0x3fb9c1d0 + seed)
	shape := tensor.Shape{n, sig.Features}
	if sig.DType == tensor.Float64 {
		vals := make([]float64, n*sig.Features)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		return tensor.FromF64(shape, vals)
	}
	vals := make([]float32, n*sig.Features)
	for i := range vals {
		vals[i] = rng.Float32()
	}
	return tensor.FromF32(shape, vals)
}
