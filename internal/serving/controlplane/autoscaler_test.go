package controlplane

import (
	"testing"
	"time"

	"tfhpc/internal/serving"
)

// scalerHarness builds a real fleet (no models — the load signal is
// injected) plus an un-started autoscaler ticked by hand with synthetic
// clock times, so every decision is deterministic.
func scalerHarness(t *testing.T, cfg AutoscalerConfig) (*Autoscaler, *Fleet, func(load float64)) {
	t.Helper()
	fleet, _ := testFleetNoModel(t)
	if err := fleet.ScaleTo(cfg.Min); err != nil {
		t.Fatal(err)
	}
	a := NewAutoscaler(fleet, nil, cfg)
	load := 0.0
	a.load = func() float64 { return load }
	return a, fleet, func(l float64) { load = l }
}

func testFleetNoModel(t *testing.T) (*Fleet, func()) {
	t.Helper()
	router, err := serving.NewRouter(nil, serving.RouterOptions{BenchUntilHealthy: true})
	if err != nil {
		t.Fatal(err)
	}
	fleet := NewFleet(router, &ClusterSpawner{}, FleetOptions{DrainTimeout: time.Second})
	cleanup := func() { fleet.Close(); router.Close() }
	t.Cleanup(cleanup)
	return fleet, cleanup
}

func TestAutoscalerScalesUpAndDownWithinBounds(t *testing.T) {
	cfg := AutoscalerConfig{
		Min: 1, Max: 3, TargetOutstanding: 4, EwmaAlpha: 1,
		UpCooldown: 100 * time.Millisecond, DownCooldown: time.Second,
		Hysteresis: 0.25,
	}
	a, fleet, setLoad := scalerHarness(t, cfg)

	now := time.Unix(1000, 0)
	// Load for 5 replicas, but Max caps at 3.
	setLoad(20)
	a.tick(now)
	if fleet.Size() != 3 {
		t.Fatalf("size=%d after load 20, want 3 (Max)", fleet.Size())
	}
	// Load vanishes: no shrink before DownCooldown...
	setLoad(0)
	a.tick(now.Add(200 * time.Millisecond))
	if fleet.Size() != 3 {
		t.Fatalf("shrank before DownCooldown: size=%d", fleet.Size())
	}
	// ...then all the way to Min after it.
	a.tick(now.Add(2 * time.Second))
	if fleet.Size() != 1 {
		t.Fatalf("size=%d after idle cooldown, want 1 (Min)", fleet.Size())
	}
	st := a.Status()
	if st.ScaleUps < 1 || st.ScaleDowns < 1 {
		t.Fatalf("counters: ups=%d downs=%d", st.ScaleUps, st.ScaleDowns)
	}
	if st.Flaps != 0 {
		t.Fatalf("flaps=%d on a load change of 20→0 (should not count)", st.Flaps)
	}
}

// A load sitting on a replica boundary must not bounce the fleet: the
// hysteresis band keeps the larger size.
func TestAutoscalerHysteresisHoldsBoundaryLoad(t *testing.T) {
	cfg := AutoscalerConfig{
		Min: 1, Max: 4, TargetOutstanding: 4, EwmaAlpha: 1,
		UpCooldown: 50 * time.Millisecond, DownCooldown: 50 * time.Millisecond,
		Hysteresis: 0.25,
	}
	a, fleet, setLoad := scalerHarness(t, cfg)

	now := time.Unix(1000, 0)
	setLoad(4.4) // ceil(4.4/4) = 2
	a.tick(now)
	if fleet.Size() != 2 {
		t.Fatalf("size=%d after load 4.4, want 2", fleet.Size())
	}
	// Dips just under the boundary: 3.9*(1.25)/4 = 1.22 → still needs 2.
	setLoad(3.9)
	for i := 1; i <= 5; i++ {
		a.tick(now.Add(time.Duration(i) * time.Second))
	}
	if fleet.Size() != 2 {
		t.Fatalf("hysteresis failed: size=%d after boundary dip, want 2", fleet.Size())
	}
	if st := a.Status(); st.Flaps != 0 {
		t.Fatalf("flaps=%d, want 0", st.Flaps)
	}
}

// With the hysteresis band shrunk to nothing, a boundary dip does reverse
// the previous scale on an unchanged load — which is exactly what the flap
// counter must book.
func TestAutoscalerFlapCounter(t *testing.T) {
	cfg := AutoscalerConfig{
		Min: 1, Max: 4, TargetOutstanding: 4, EwmaAlpha: 1,
		UpCooldown: 50 * time.Millisecond, DownCooldown: 50 * time.Millisecond,
		Hysteresis: 0.001, FlapWindow: 10 * time.Second, FlapLoadDelta: 0.2,
	}
	a, fleet, setLoad := scalerHarness(t, cfg)

	now := time.Unix(1000, 0)
	setLoad(4.1)
	a.tick(now)
	if fleet.Size() != 2 {
		t.Fatalf("size=%d after load 4.1, want 2", fleet.Size())
	}
	setLoad(3.9) // |3.9-4.1|/4.1 < 0.2: same load, reversed direction
	a.tick(now.Add(time.Second))
	if fleet.Size() != 1 {
		t.Fatalf("size=%d after dip with no hysteresis, want 1", fleet.Size())
	}
	if st := a.Status(); st.Flaps != 1 {
		t.Fatalf("flaps=%d, want 1", st.Flaps)
	}
}

// The p99 ceiling is an independent trigger: outstanding within target but
// latency over the ceiling still grows the fleet.
func TestAutoscalerP99CeilingTriggersGrowth(t *testing.T) {
	cfg := AutoscalerConfig{
		Min: 1, Max: 3, TargetOutstanding: 100, EwmaAlpha: 1,
		P99Ceiling: 50 * time.Millisecond,
		UpCooldown: 50 * time.Millisecond, DownCooldown: time.Hour,
	}
	a, fleet, setLoad := scalerHarness(t, cfg)
	p99 := time.Duration(0)
	a.p99 = func() time.Duration { return p99 }

	now := time.Unix(1000, 0)
	setLoad(1)
	a.tick(now)
	if fleet.Size() != 1 {
		t.Fatalf("size=%d with cool p99, want 1", fleet.Size())
	}
	p99 = 200 * time.Millisecond
	a.tick(now.Add(time.Second))
	if fleet.Size() != 2 {
		t.Fatalf("size=%d with p99 over ceiling, want 2", fleet.Size())
	}
}
