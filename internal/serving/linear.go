package serving

import (
	"fmt"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/tensor"
	"tfhpc/internal/vars"
)

// LinearGraphID tags checkpoints holding a servable linear model (variable
// "w", prediction X·w) — the format tfsgd -checkpoint writes and tfserve
// -model loads, closing the train → checkpoint → serve → predict loop.
const LinearGraphID = "tfhpc/serving/linear"

// NewLinear builds a served linear model: input [n, d] placeholder, weight
// vector w (d), output = input·w of shape [n]. The per-row dot product has
// a fixed reduction order, so batched and single-row serving agree bitwise.
func NewLinear(model string, version int, w *tensor.Tensor) (*ModelVersion, error) {
	if w == nil || w.Rank() != 1 {
		return nil, fmt.Errorf("serving: linear model needs a rank-1 weight vector, got %v", shapeOf(w))
	}
	g := graph.New()
	in := g.Placeholder("input", w.DType(), nil)
	wv := g.AddNamedOp("w", "Variable", graph.Attrs{"var_name": "w"})
	g.AddNamedOp("output", "MatVec", nil, in, wv)
	sig := Signature{InputName: "input", OutputName: "output", Features: w.Shape()[0], DType: w.DType()}
	mv, err := NewModelVersion(model, version, g, sig, map[string]*tensor.Tensor{"w": w})
	if err != nil {
		return nil, err
	}
	// Streaming fast path: one row is one dot product. Dot32/Dot64 use the
	// exact split-accumulator reduction MatVec32/MatVec64 apply per row, so
	// this is bitwise the same answer a 1-row (or coalesced) batch produces.
	mv.rowOutShape = tensor.Shape{}
	switch w.DType() {
	case tensor.Float32:
		wd := append([]float32(nil), w.F32()...)
		mv.rowKernel = func(row, out *tensor.Tensor) {
			out.F32()[0] = float32(gemm.Dot32(row.F32(), wd))
		}
	default:
		wd := append([]float64(nil), w.F64()...)
		mv.rowKernel = func(row, out *tensor.Tensor) {
			out.F64()[0] = gemm.Dot64(row.F64(), wd)
		}
	}
	return mv, nil
}

// SaveLinear checkpoints a trained weight vector in the servable linear
// format; step becomes the model version on load.
func SaveLinear(path string, step int64, w *tensor.Tensor) error {
	if w == nil || w.Rank() != 1 {
		return fmt.Errorf("serving: linear checkpoint needs a rank-1 weight vector, got %v", shapeOf(w))
	}
	store := vars.NewStore()
	if err := store.Get("w").Assign(w); err != nil {
		return err
	}
	return checkpoint.Capture(LinearGraphID, step, store).Save(path)
}

// LoadLinear loads a servable linear model from a checkpoint written by
// SaveLinear (or any checkpoint with the linear GraphID and a "w" vector).
// version <= 0 takes the checkpoint's step as the version.
func LoadLinear(model string, version int, path string) (*ModelVersion, error) {
	c, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	if c.GraphID != LinearGraphID {
		return nil, fmt.Errorf("serving: checkpoint %s has graph id %q, want %q", path, c.GraphID, LinearGraphID)
	}
	w, ok := c.Vars["w"]
	if !ok {
		return nil, fmt.Errorf("serving: checkpoint %s has no variable %q", path, "w")
	}
	if version <= 0 {
		version = int(c.Step)
		if version <= 0 {
			version = 1
		}
	}
	return NewLinear(model, version, w)
}
