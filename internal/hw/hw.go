// Package hw is the hardware catalogue for the two evaluation platforms of
// the paper — the Tegner and Kebnekaise GPU clusters — and the performance
// models of their GPUs, interconnects and node topologies. All simulated
// durations in the virtual cluster derive from these numbers.
//
// The models are rooflines: a kernel is charged max(flops/FlopRate,
// bytes/MemBW); transfers are charged latency + bytes/bandwidth along every
// hop of the path (GPU→PCIe→host→NIC→wire). Values are calibrated against
// the paper's measured results (Figs. 7, 8, 10, 11) and public spec sheets;
// see DESIGN.md §5. We reproduce shapes — orderings, scaling ratios,
// saturation points — not silicon-exact numbers.
package hw

import "fmt"

// GPUModel describes one GPU engine (for K80 boards, one GK210 engine; the
// paper exposes engines to TensorFlow instances individually).
type GPUModel struct {
	Name     string
	MemBytes int64   // device memory capacity
	SPFlops  float64 // peak single-precision flop/s
	DPFlops  float64 // peak double-precision flop/s
	MemBW    float64 // device memory bandwidth, bytes/s
	GemmEff  float64 // fraction of peak a large GEMM sustains
	PCIeBW   float64 // effective host<->device staging bandwidth, bytes/s
}

// The three GPU generations used in the paper's evaluation.
var (
	// K420: the small Kepler board on some Tegner nodes; 1 GB of memory
	// forces the 4096² tile size used in the matmul experiments.
	K420 = GPUModel{
		Name:     "K420",
		MemBytes: 1 << 30,
		SPFlops:  300e9,
		DPFlops:  12.5e9,
		MemBW:    29e9,
		GemmEff:  0.70,
		PCIeBW:   1.35e9,
	}
	// GK210: one engine of a K80 board (each board carries two engines with
	// 12 GB each; the paper's "K80 GPU" always means one engine).
	GK210 = GPUModel{
		Name:     "GK210",
		MemBytes: 12 << 30,
		SPFlops:  2800e9,
		DPFlops:  935e9,
		MemBW:    240e9,
		GemmEff:  0.80,
		PCIeBW:   2.3e9,
	}
	// V100: Volta board on Kebnekaise V100 nodes.
	V100 = GPUModel{
		Name:     "V100",
		MemBytes: 16 << 30,
		SPFlops:  14000e9,
		DPFlops:  7000e9,
		MemBW:    900e9,
		GemmEff:  0.90,
		PCIeBW:   11e9,
	}
)

// GemmTime returns the modelled duration of an m×k by k×n GEMM in the given
// precision (flops = 2mkn), roofline-limited by compute and memory traffic.
func (g GPUModel) GemmTime(m, k, n int, dp bool) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	elem := 4.0
	rate := g.SPFlops
	if dp {
		elem = 8.0
		rate = g.DPFlops
	}
	bytes := elem * (float64(m)*float64(k) + float64(k)*float64(n) + float64(m)*float64(n))
	tCompute := flops / (rate * g.GemmEff)
	tMem := bytes / g.MemBW
	if tMem > tCompute {
		return tMem
	}
	return tCompute
}

// MatVecTime returns the duration of an m×n matrix-vector product; dense
// matvec is memory-bandwidth bound on every GPU in the catalogue.
func (g GPUModel) MatVecTime(m, n int, dp bool) float64 {
	elem := 4.0
	rate := g.SPFlops
	if dp {
		elem = 8.0
		rate = g.DPFlops
	}
	bytes := elem * (float64(m)*float64(n) + float64(n) + float64(m))
	flops := 2 * float64(m) * float64(n)
	tMem := bytes / g.MemBW
	tCompute := flops / rate
	if tCompute > tMem {
		return tCompute
	}
	return tMem
}

// VectorOpTime returns the duration of a streaming vector kernel (axpy, dot,
// scale) touching the given number of bytes.
func (g GPUModel) VectorOpTime(bytes int64) float64 {
	return float64(bytes) / g.MemBW
}

// FFTTime returns the duration of an n-point complex-to-complex FFT in the
// given precision; FFTs are memory-bandwidth bound (each of the log n passes
// streams the whole array).
func (g GPUModel) FFTTime(n int, dp bool) float64 {
	if n <= 1 {
		return 0
	}
	elem := 8.0 // complex64
	if dp {
		elem = 16.0 // complex128
	}
	logN := 0
	for v := n; v > 1; v >>= 1 {
		logN++
	}
	// Each butterfly pass reads+writes the array; assume fused factor 0.5
	// (cuFFT-style multi-butterfly kernels).
	bytes := float64(logN) * 2 * elem * float64(n) * 0.5
	flops := 5 * float64(n) * float64(logN) // standard FFT flop count
	rate := g.SPFlops
	if dp {
		rate = g.DPFlops
	}
	tMem := bytes / g.MemBW
	tCompute := flops / rate
	if tCompute > tMem {
		return tCompute
	}
	return tMem
}

// PCIeTime returns the duration of a host<->device staging copy.
func (g GPUModel) PCIeTime(bytes int64) float64 {
	return 10e-6 + float64(bytes)/g.PCIeBW
}

// LinkModel describes an inter-node wire.
type LinkModel struct {
	Name    string
	BW      float64 // bytes/s raw signalling
	Latency float64 // one-way, seconds
}

// The interconnects of the two clusters.
var (
	EDRInfiniBand = LinkModel{Name: "EDR InfiniBand", BW: 12.5e9, Latency: 1.3e-6}
	FDRInfiniBand = LinkModel{Name: "FDR InfiniBand", BW: 7.0e9, Latency: 1.7e-6}
	GbEthernet    = LinkModel{Name: "1GbE Ethernet", BW: 117e6, Latency: 30e-6}
)

// NodeType describes a homogeneous family of compute nodes, including how
// many TensorFlow instances the paper runs on each (Table I).
type NodeType struct {
	Name             string
	GPU              GPUModel
	GPUEngines       int // visible GPU engines per node
	InstancesPerNode int // TensorFlow processes per node (Table I)
	HostMemBW        float64
	SerializeBW      float64 // host-side ProtoBuf copy/serialize throughput
	NUMAIslands      int
	NICIsland        int   // island wired to the IB HCA and other I/O (Fig. 9)
	GPUIslandOf      []int // island of each GPU engine
	FSReadBW         float64
}

// Cluster describes one evaluation platform.
type Cluster struct {
	Name      string
	Wire      LinkModel
	Ethernet  LinkModel // the network gRPC resolves to on this cluster
	RDMAEff   float64   // fraction of wire bandwidth verbs sustains
	GRPCOnIB  bool      // whether gRPC rides IPoIB (Kebnekaise) or Ethernet (Tegner)
	NodeTypes map[string]*NodeType
}

// Tegner models the PDC cluster: Haswell nodes, EDR fabric, gRPC falling
// back to gigabit Ethernet (the paper observed exactly this), K420 and K80
// node flavours.
var Tegner = &Cluster{
	Name:     "Tegner",
	Wire:     EDRInfiniBand,
	Ethernet: GbEthernet,
	RDMAEff:  0.52,
	GRPCOnIB: false,
	NodeTypes: map[string]*NodeType{
		"k420": {
			Name:             "Tegner-K420",
			GPU:              K420,
			GPUEngines:       1,
			InstancesPerNode: 1,
			HostMemBW:        60e9,
			SerializeBW:      0.64e9,
			NUMAIslands:      2,
			NICIsland:        0,
			GPUIslandOf:      []int{0},
			FSReadBW:         1.1e9,
		},
		"k80": {
			Name:             "Tegner-K80",
			GPU:              GK210,
			GPUEngines:       2,
			InstancesPerNode: 2,
			HostMemBW:        60e9,
			SerializeBW:      0.64e9,
			NUMAIslands:      2,
			NICIsland:        0,
			GPUIslandOf:      []int{0, 0},
			FSReadBW:         1.1e9,
		},
	},
}

// Kebnekaise models the HPC2N cluster: Broadwell nodes, FDR fabric, gRPC on
// IPoIB, K80 nodes carrying two boards (four engines) across two NUMA
// islands with all I/O attached to island 0 (Fig. 9), and V100 nodes.
var Kebnekaise = &Cluster{
	Name:     "Kebnekaise",
	Wire:     FDRInfiniBand,
	Ethernet: LinkModel{Name: "IPoIB", BW: 2.2e9, Latency: 15e-6},
	RDMAEff:  0.52,
	GRPCOnIB: true,
	NodeTypes: map[string]*NodeType{
		"k80": {
			Name:             "Kebnekaise-K80",
			GPU:              GK210,
			GPUEngines:       4, // two K80 boards, two GK210 engines each
			InstancesPerNode: 4,
			HostMemBW:        65e9,
			SerializeBW:      0.96e9,
			NUMAIslands:      2,
			NICIsland:        0,
			GPUIslandOf:      []int{0, 0, 1, 1}, // one board per island (Fig. 9)
			FSReadBW:         1.3e9,
		},
		// SerializeBW below reflects the Broadwell hosts' faster protobuf
		// path relative to Tegner's Haswells (calibrated to the paper's
		// 480 MB/s Kebnekaise GPU MPI measurement).
		"v100": {
			Name:             "Kebnekaise-V100",
			GPU:              V100,
			GPUEngines:       2,
			InstancesPerNode: 2,
			HostMemBW:        65e9,
			SerializeBW:      0.96e9,
			NUMAIslands:      2,
			NICIsland:        0,
			GPUIslandOf:      []int{0, 1},
			FSReadBW:         1.3e9,
		},
	},
}

// Clusters indexes both platforms by lower-case name.
var Clusters = map[string]*Cluster{
	"tegner":     Tegner,
	"kebnekaise": Kebnekaise,
}

// NodeTypeByName resolves "tegner/k420"-style identifiers.
func NodeTypeByName(cluster, node string) (*Cluster, *NodeType, error) {
	c, ok := Clusters[cluster]
	if !ok {
		return nil, nil, fmt.Errorf("hw: unknown cluster %q", cluster)
	}
	nt, ok := c.NodeTypes[node]
	if !ok {
		return nil, nil, fmt.Errorf("hw: cluster %q has no node type %q", cluster, node)
	}
	return c, nt, nil
}

// TopologyString renders the node's NUMA/PCIe layout in the style of Fig. 9.
func (nt *NodeType) TopologyString() string {
	s := fmt.Sprintf("%s: %d NUMA island(s), %d %s engine(s), NIC+I/O on island %d\n",
		nt.Name, nt.NUMAIslands, nt.GPUEngines, nt.GPU.Name, nt.NICIsland)
	for isle := 0; isle < nt.NUMAIslands; isle++ {
		s += fmt.Sprintf("  island %d:", isle)
		for g, gi := range nt.GPUIslandOf {
			if gi == isle {
				s += fmt.Sprintf(" %s(%d)", nt.GPU.Name, g)
			}
		}
		if isle == nt.NICIsland {
			s += " [InfiniBand, other I/O]"
		}
		s += "\n"
	}
	return s
}
