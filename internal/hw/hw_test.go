package hw

import (
	"strings"
	"testing"
)

func TestCatalogueLookup(t *testing.T) {
	for _, c := range []struct{ cluster, node string }{
		{"tegner", "k420"},
		{"tegner", "k80"},
		{"kebnekaise", "k80"},
		{"kebnekaise", "v100"},
	} {
		cl, nt, err := NodeTypeByName(c.cluster, c.node)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.cluster, c.node, err)
		}
		if cl == nil || nt == nil {
			t.Fatalf("%v/%v: nil result", c.cluster, c.node)
		}
	}
	if _, _, err := NodeTypeByName("summit", "v100"); err == nil {
		t.Fatal("unknown cluster should error")
	}
	if _, _, err := NodeTypeByName("tegner", "v100"); err == nil {
		t.Fatal("unknown node type should error")
	}
}

// Table I of the paper: TensorFlow instances per node.
func TestTableIInstanceCounts(t *testing.T) {
	want := []struct {
		cluster, node string
		instances     int
		engines       int
	}{
		{"tegner", "k420", 1, 1},
		{"tegner", "k80", 2, 2},
		{"kebnekaise", "k80", 4, 4},
		{"kebnekaise", "v100", 2, 2},
	}
	for _, w := range want {
		_, nt, err := NodeTypeByName(w.cluster, w.node)
		if err != nil {
			t.Fatal(err)
		}
		if nt.InstancesPerNode != w.instances {
			t.Errorf("%s/%s instances = %d, want %d", w.cluster, w.node, nt.InstancesPerNode, w.instances)
		}
		if nt.GPUEngines != w.engines {
			t.Errorf("%s/%s engines = %d, want %d", w.cluster, w.node, nt.GPUEngines, w.engines)
		}
	}
}

func TestGPUMemoryCapacities(t *testing.T) {
	if K420.MemBytes != 1<<30 {
		t.Error("K420 must have 1 GB (Table I)")
	}
	if GK210.MemBytes != 12<<30 {
		t.Error("GK210 must have 12 GB per engine (Table I)")
	}
	if V100.MemBytes != 16<<30 {
		t.Error("V100 must have 16 GB (Table I)")
	}
}

func TestGemmTimeOrdering(t *testing.T) {
	// V100 beats GK210 beats K420 on the same GEMM.
	n := 4096
	k420 := K420.GemmTime(n, n, n, false)
	k80 := GK210.GemmTime(n, n, n, false)
	v100 := V100.GemmTime(n, n, n, false)
	if !(v100 < k80 && k80 < k420) {
		t.Fatalf("GEMM time ordering wrong: v100=%v k80=%v k420=%v", v100, k80, k420)
	}
	// Doubling every dimension costs ~8x for a compute-bound GEMM.
	small := GK210.GemmTime(2048, 2048, 2048, false)
	big := GK210.GemmTime(4096, 4096, 4096, false)
	if ratio := big / small; ratio < 7 || ratio > 9 {
		t.Fatalf("GEMM scaling ratio %v, want ~8", ratio)
	}
	// DP GEMM is slower than SP.
	if GK210.GemmTime(n, n, n, true) <= GK210.GemmTime(n, n, n, false) {
		t.Fatal("DP GEMM should be slower than SP")
	}
}

func TestMatVecIsMemoryBound(t *testing.T) {
	// For a dense fp64 matvec the duration should be ~ bytes/MemBW.
	n := 8192
	dt := GK210.MatVecTime(n, n, true)
	bytes := 8.0 * float64(n) * float64(n)
	ideal := bytes / GK210.MemBW
	if dt < ideal*0.99 || dt > ideal*1.2 {
		t.Fatalf("matvec time %v not memory bound (ideal %v)", dt, ideal)
	}
}

func TestFFTTimeGrowsNLogN(t *testing.T) {
	t1 := GK210.FFTTime(1<<20, true)
	t2 := GK210.FFTTime(1<<21, true)
	// Doubling n should slightly more than double the time (n log n).
	if ratio := t2 / t1; ratio < 2.0 || ratio > 2.2 {
		t.Fatalf("FFT scaling ratio %v, want ~2.1", ratio)
	}
	if GK210.FFTTime(1, true) != 0 {
		t.Fatal("FFT of 1 point should be free")
	}
}

func TestPCIeTimeMonotone(t *testing.T) {
	if K420.PCIeTime(1<<20) >= K420.PCIeTime(1<<24) {
		t.Fatal("PCIe time must grow with size")
	}
	if GK210.PCIeTime(1<<24) >= K420.PCIeTime(1<<24) {
		t.Fatal("GK210 PCIe staging should be faster than K420's")
	}
}

func TestKebnekaiseTopologyFig9(t *testing.T) {
	_, nt, _ := NodeTypeByName("kebnekaise", "k80")
	if nt.NUMAIslands != 2 {
		t.Fatal("Kebnekaise K80 nodes have two NUMA islands (Fig. 9)")
	}
	if nt.NICIsland != 0 {
		t.Fatal("I/O attaches to island 0 (Fig. 9)")
	}
	// One K80 board (two engines) per island.
	count := map[int]int{}
	for _, isle := range nt.GPUIslandOf {
		count[isle]++
	}
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("GPU engines per island = %v, want 2+2", count)
	}
	s := nt.TopologyString()
	for _, want := range []string{"island 0", "island 1", "InfiniBand", "GK210"} {
		if !strings.Contains(s, want) {
			t.Errorf("topology string missing %q:\n%s", want, s)
		}
	}
}

func TestVectorOpTime(t *testing.T) {
	if V100.VectorOpTime(1<<30) >= GK210.VectorOpTime(1<<30) {
		t.Fatal("V100 streams faster than GK210")
	}
}
