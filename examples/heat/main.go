// Heat: steady-state temperature of a square plate — the PDE workload class
// the paper's introduction motivates. The 2-D Poisson problem -∆u = f with
// fixed boundary temperatures discretises (5-point stencil) into an SPD
// linear system, which the distributed data-driven CG solver handles across
// row-block workers with queue-based reductions. The same system is then solved
// a second way — a fast Poisson solver built on the FFT engine's 2-D
// transform (a discrete sine transform via odd extension diagonalises the
// 5-point Laplacian) — and the two solutions must agree.
package main

import (
	"fmt"
	"log"
	"math"

	"tfhpc/apps/cg"
	"tfhpc/internal/fft"
	"tfhpc/tf"
)

const (
	// 31 interior points per side: the odd extension used by the spectral
	// solver has period 2·(grid+1) = 64, a power of two for the FFT engine.
	grid = 31
	hot  = 100.0
)

func main() {
	n := grid * grid
	// Assemble the 5-point Laplacian as a dense SPD matrix, and the heat
	// source: the left boundary is held at `hot`, the rest at zero.
	a := tf.NewTensor(tf.Float64, n, n)
	b := tf.NewTensor(tf.Float64, n)
	ad, bd := a.F64(), b.F64()
	idx := func(i, j int) int { return i*grid + j }
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			row := idx(i, j)
			ad[row*n+row] = 4
			for _, nb := range [][2]int{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
				if nb[0] < 0 || nb[0] >= grid || nb[1] < 0 || nb[1] >= grid {
					// Boundary neighbour: its temperature moves to the RHS.
					if nb[1] < 0 {
						bd[row] += hot
					}
					continue
				}
				ad[row*n+idx(nb[0], nb[1])] = -1
			}
		}
	}

	// 31 row-block workers: the worker count must divide n = 31², and the
	// odd extension the spectral solver needs makes the grid odd.
	cfg := cg.Config{N: n, Workers: 31, MaxIters: 2000, Tol: 1e-10}
	res, err := cg.RunReal(cfg, a, b, cg.RealOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson %dx%d grid (%d unknowns) solved across %d workers\n",
		grid, grid, n, cfg.Workers)
	fmt.Printf("converged in %d CG iterations, residual %.2e, %.2f Gflop/s\n",
		res.Iters, res.ResidualNorm, res.Gflops)

	// Spectral solve: the DST diagonalises the stencil, so the whole system
	// solves in two 2-D transforms and a pointwise divide by the
	// eigenvalues 4·sin²(πk/2N) + 4·sin²(πl/2N), N = grid+1.
	spectral, err := spectralSolve(bd)
	if err != nil {
		log.Fatal(err)
	}
	u := res.X.F64()
	var maxDiff float64
	for i := range u {
		if d := math.Abs(u[i] - spectral[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("FFT2D spectral solver agrees with CG to max |Δ| = %.2e\n", maxDiff)
	if maxDiff > 1e-6 {
		log.Fatal("spectral and CG solutions disagree")
	}

	// Temperature along the plate's horizontal midline: hot wall cooling
	// towards the far edge, strictly decreasing.
	mid := grid / 2
	fmt.Print("midline temperature: ")
	prev := hot
	for j := 0; j < grid; j += 4 {
		v := u[idx(mid, j)]
		fmt.Printf("%.1f ", v)
		if v > prev {
			log.Fatalf("temperature must decay away from the hot wall (col %d: %.2f > %.2f)", j, v, prev)
		}
		prev = v
	}
	fmt.Println("\nphysics check: monotone decay from the hot wall — OK")
}

// spectralSolve runs the FFT-based fast Poisson solver: DST2(f), divide by
// the Laplacian eigenvalues, DST2 back. The 2-D DST-I of the grid×grid
// field comes from one complex FFT2D of its doubly odd extension E (period
// 2N per axis): FFT2D(E)[k][l] = −4·DST2[k][l].
func spectralSolve(f []float64) ([]float64, error) {
	const N = grid + 1
	fhat, err := dst2(f)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= grid; k++ {
		sk := math.Sin(math.Pi * float64(k) / (2 * N))
		for l := 1; l <= grid; l++ {
			sl := math.Sin(math.Pi * float64(l) / (2 * N))
			fhat[(k-1)*grid+(l-1)] /= 4 * (sk*sk + sl*sl)
		}
	}
	u, err := dst2(fhat)
	if err != nil {
		return nil, err
	}
	// DST-I is its own inverse up to a factor of N/2 per axis.
	scale := 4.0 / float64(N*N)
	for i := range u {
		u[i] *= scale
	}
	return u, nil
}

// dst2 computes the 2-D DST-I of a grid×grid field through FFT2D.
func dst2(f []float64) ([]float64, error) {
	const N = grid + 1
	const M = 2 * N
	e := make([]complex128, M*M)
	for i := 1; i <= grid; i++ {
		for j := 1; j <= grid; j++ {
			v := complex(f[(i-1)*grid+(j-1)], 0)
			e[i*M+j] = v
			e[(M-i)*M+j] = -v
			e[i*M+(M-j)] = -v
			e[(M-i)*M+(M-j)] = v
		}
	}
	if err := fft.FFT2D(e, M, M, false); err != nil {
		return nil, err
	}
	out := make([]float64, grid*grid)
	for k := 1; k <= grid; k++ {
		for l := 1; l <= grid; l++ {
			out[(k-1)*grid+(l-1)] = -real(e[k*M+l]) / 4
		}
	}
	return out, nil
}
