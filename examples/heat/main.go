// Heat: steady-state temperature of a square plate — the PDE workload class
// the paper's introduction motivates. The 2-D Poisson problem -∆u = f with
// fixed boundary temperatures discretises (5-point stencil) into an SPD
// linear system, which the distributed data-driven CG solver handles across
// four workers with queue-based reductions.
package main

import (
	"fmt"
	"log"

	"tfhpc/apps/cg"
	"tfhpc/tf"
)

const (
	grid = 24 // interior points per side; the system is grid² x grid²
	hot  = 100.0
)

func main() {
	n := grid * grid
	// Assemble the 5-point Laplacian as a dense SPD matrix, and the heat
	// source: the left boundary is held at `hot`, the rest at zero.
	a := tf.NewTensor(tf.Float64, n, n)
	b := tf.NewTensor(tf.Float64, n)
	ad, bd := a.F64(), b.F64()
	idx := func(i, j int) int { return i*grid + j }
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			row := idx(i, j)
			ad[row*n+row] = 4
			for _, nb := range [][2]int{{i - 1, j}, {i + 1, j}, {i, j - 1}, {i, j + 1}} {
				if nb[0] < 0 || nb[0] >= grid || nb[1] < 0 || nb[1] >= grid {
					// Boundary neighbour: its temperature moves to the RHS.
					if nb[1] < 0 {
						bd[row] += hot
					}
					continue
				}
				ad[row*n+idx(nb[0], nb[1])] = -1
			}
		}
	}

	cfg := cg.Config{N: n, Workers: 4, MaxIters: 2000, Tol: 1e-10}
	res, err := cg.RunReal(cfg, a, b, cg.RealOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Poisson %dx%d grid (%d unknowns) solved across %d workers\n",
		grid, grid, n, cfg.Workers)
	fmt.Printf("converged in %d CG iterations, residual %.2e, %.2f Gflop/s\n",
		res.Iters, res.ResidualNorm, res.Gflops)

	// Temperature along the plate's horizontal midline: hot wall cooling
	// towards the far edge, strictly decreasing.
	u := res.X.F64()
	mid := grid / 2
	fmt.Print("midline temperature: ")
	prev := hot
	for j := 0; j < grid; j += 4 {
		v := u[idx(mid, j)]
		fmt.Printf("%.1f ", v)
		if v > prev {
			log.Fatalf("temperature must decay away from the hot wall (col %d: %.2f > %.2f)", j, v, prev)
		}
		prev = v
	}
	fmt.Println("\nphysics check: monotone decay from the hot wall — OK")
}
