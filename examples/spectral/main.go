// Spectral: distributed signal analysis with the FFT application. A noisy
// two-tone signal is split into interleaved tiles, transformed by worker
// sessions, merged with twiddle factors, and the dominant frequencies are
// recovered — the signal-processing workload the paper cites for FFT. The
// signal is real, so tone recovery runs on the engine's RFFT half-spectrum
// (packed-complex fast path, ~2× a complex FFT) and the distributed
// pipeline's full transform is cross-checked against it.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"os"

	appfft "tfhpc/apps/fft"
	"tfhpc/internal/fft"
	"tfhpc/tf"
)

func main() {
	const (
		logN  = 12
		n     = 1 << logN
		tone1 = 440.0 // bins
		tone2 = 1337.0
	)
	rng := tf.NewRNG(2024)
	signal := make([]float64, n)
	for i := range signal {
		t := float64(i) / n
		clean := math.Sin(2*math.Pi*tone1*t) + 0.5*math.Sin(2*math.Pi*tone2*t)
		noise := 0.2 * (rng.Float64()*2 - 1)
		signal[i] = clean + noise
	}

	// Tone recovery on the half-spectrum: a real signal needs only bins
	// 0..n/2, and RFFT computes exactly those.
	spec, err := fft.RFFT(signal)
	if err != nil {
		log.Fatal(err)
	}
	first, second := topTwoBins(spec[1 : n/2])
	fmt.Printf("RFFT of 2^%d real samples: %d spectrum bins\n", logN, len(spec))
	fmt.Printf("dominant bins: %d and %d (expected %d and %d)\n",
		first, second, int(tone1), int(tone2))
	if first != int(tone1) || second != int(tone2) {
		log.Fatal("tone recovery failed")
	}

	// Cross-check: the distributed pipeline's full complex transform must
	// agree with the half-spectrum on every positive-frequency bin.
	dir, err := os.MkdirTemp("", "spectral")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	csignal := make([]complex128, n)
	for i, v := range signal {
		csignal[i] = complex(v, 0)
	}
	cfg := appfft.Config{N: n, Tiles: 8, Workers: 4}
	res, err := appfft.RunReal(dir, cfg, csignal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed FFT across %d workers (%d tiles): collect %.3fs, merge %.3fs\n",
		cfg.Workers, cfg.Tiles, res.CollectSeconds, res.MergeSeconds)
	for k := 0; k <= n/2; k++ {
		if cmplx.Abs(res.X[k]-spec[k]) > 1e-8*float64(n) {
			log.Fatalf("pipeline and RFFT disagree at bin %d: %v vs %v", k, res.X[k], spec[k])
		}
	}
	fmt.Println("tone recovery through RFFT, confirmed by the distributed pipeline — OK")
}

// topTwoBins returns the indices (1-based within the full spectrum) of the
// two largest-magnitude bins of spec, which covers bins 1..len(spec).
func topTwoBins(spec []complex128) (first, second int) {
	var m1, m2 float64
	for i, v := range spec {
		m := cmplx.Abs(v)
		switch {
		case m > m1:
			m2, second = m1, first
			m1, first = m, i+1
		case m > m2:
			m2, second = m, i+1
		}
	}
	return first, second
}
