// Spectral: distributed signal analysis with the FFT application. A noisy
// two-tone signal is split into interleaved tiles, transformed by worker
// sessions, merged with twiddle factors, and the dominant frequencies are
// recovered — the signal-processing workload the paper cites for FFT.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"os"

	"tfhpc/apps/fft"
	"tfhpc/tf"
)

func main() {
	const (
		logN  = 12
		n     = 1 << logN
		tone1 = 440.0 // bins
		tone2 = 1337.0
	)
	rng := tf.NewRNG(2024)
	signal := make([]complex128, n)
	for i := range signal {
		t := float64(i) / n
		clean := math.Sin(2*math.Pi*tone1*t) + 0.5*math.Sin(2*math.Pi*tone2*t)
		noise := 0.2 * (rng.Float64()*2 - 1)
		signal[i] = complex(clean+noise, 0)
	}

	dir, err := os.MkdirTemp("", "spectral")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := fft.Config{N: n, Tiles: 8, Workers: 4}
	res, err := fft.RunReal(dir, cfg, signal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed FFT of 2^%d samples across %d workers (%d tiles): collect %.3fs, merge %.3fs\n",
		logN, cfg.Workers, cfg.Tiles, res.CollectSeconds, res.MergeSeconds)

	// Find the two strongest positive-frequency bins.
	type peak struct {
		bin int
		mag float64
	}
	var first, second peak
	for k := 1; k < n/2; k++ {
		m := cmplx.Abs(res.X[k])
		switch {
		case m > first.mag:
			second = first
			first = peak{k, m}
		case m > second.mag:
			second = peak{k, m}
		}
	}
	fmt.Printf("dominant bins: %d and %d (expected %d and %d)\n",
		first.bin, second.bin, int(tone1), int(tone2))
	if first.bin != int(tone1) || second.bin != int(tone2) {
		log.Fatal("tone recovery failed")
	}
	fmt.Println("tone recovery through the distributed pipeline — OK")
}
