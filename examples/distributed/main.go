// Distributed: a complete parameter-server deployment in one process — the
// workflow of Sections II.A and III of the paper. A synthetic Slurm
// allocation is resolved into a ClusterSpec, task servers come up on
// loopback TCP, data-parallel workers push gradient-like updates into a ps
// variable via assign_add over the wire, and the run is checkpointed and
// restored.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"tfhpc/internal/slurm"
	"tfhpc/tf"
)

func main() {
	// 1. Resolve a (synthetic) Slurm allocation, as the paper's resolver
	// does from scontrol: three nodes, one task each -> 1 ps + 2 workers.
	alloc := slurm.NewAllocation(4242, "t03n", 3, 1, 1)
	resolver := &tf.SlurmResolver{Jobs: []tf.JobSpec{{Name: "ps", Tasks: 1}, {Name: "worker", Tasks: 2}}}
	env, err := alloc.Env(0)
	if err != nil {
		log.Fatal(err)
	}
	resolved, err := resolver.Resolve(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved cluster spec: %s\n", resolved.Spec)

	// 2. Boot the tasks. (On a real system each process runs tfserver and
	// resolves its own identity; here all tasks share the process.)
	lc, err := tf.StartLocalCluster(map[string]int{"ps": 1, "worker": 2})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()
	peers := tf.NewPeers(lc.Spec())
	defer peers.Close()

	// 3. Each worker builds the same graph: compute locally, accumulate
	// into the shared ps variable over the wire (data parallelism).
	const dim = 8
	runWorker := func(task int) error {
		g := tf.NewGraph()
		var update, push, init *tf.Node
		g.WithDevice(fmt.Sprintf("/job:worker/task:%d", task), func() {
			update = g.AddOp("RandomUniform", tf.Attrs{
				"dtype": tf.Float64, "shape": tf.Shape{dim}, "seed": task + 1})
		})
		g.WithDevice("/job:ps/task:0", func() {
			init = g.AddNamedOp("init", "Assign", tf.Attrs{"var_name": "theta"},
				g.Const(tf.NewTensor(tf.Float64, dim)))
			push = g.AddNamedOp("push", "AssignAdd", tf.Attrs{"var_name": "theta"}, update)
		})
		sess, err := tf.NewSession(g, nil, tf.Options{
			LocalJob: "worker", LocalTask: task, Remote: peers,
		})
		if err != nil {
			return err
		}
		if task == 0 {
			if _, err := sess.Run(nil, nil, []string{init.Name()}); err != nil {
				return err
			}
		}
		for step := 0; step < 5; step++ {
			if _, err := sess.Run(nil, nil, []string{push.Name()}); err != nil {
				return err
			}
		}
		return nil
	}

	// Worker 0 initialises, then both push concurrently.
	if err := runWorker(0); err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := runWorker(1); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		log.Fatal(err)
	}

	// 4. Inspect and checkpoint the ps state.
	psStore := lc.Server("ps", 0).Res.Vars
	theta, err := psStore.Get("theta").Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theta after 10 pushes from 2 workers: %v\n", theta)

	dir, err := os.MkdirTemp("", "distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckPath := filepath.Join(dir, "model.ckpt")
	if err := tf.CaptureCheckpoint("example:v1", 10, psStore).Save(ckPath); err != nil {
		log.Fatal(err)
	}

	// 5. Restore into a fresh "restarted" ps and verify.
	fresh := tf.NewResources()
	step, err := tf.RestoreCheckpoint(ckPath, "example:v1", fresh.Vars)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := fresh.Vars.Get("theta").Read()
	if err != nil {
		log.Fatal(err)
	}
	if !restored.Equal(theta) {
		log.Fatal("restored state differs")
	}
	fmt.Printf("checkpoint at step %d restores bit-exactly — OK\n", step)
}
