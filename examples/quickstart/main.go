// Quickstart: the paper's Listing 1 in Go — two random matrices generated
// on the CPU, multiplied on the GPU, fetched through a session, with the
// resulting execution trace written in TensorFlow-Timeline form.
package main

import (
	"fmt"
	"log"

	"tfhpc/tf"
)

func main() {
	g := tf.NewGraph()
	var a, b, c *tf.Node
	g.WithDevice("/cpu:0", func() {
		a = g.AddOp("RandomUniform", tf.Attrs{
			"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 1})
		b = g.AddOp("RandomUniform", tf.Attrs{
			"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 2})
	})
	g.WithDevice("/gpu:0", func() {
		c = g.AddOp("MatMul", nil, a, b)
	})

	trace := tf.NewTimeline()
	sess, err := tf.NewSession(g, nil, tf.Options{Trace: trace})
	if err != nil {
		log.Fatal(err)
	}
	out, err := sess.Run(nil, []string{c.Name()}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("c = a x b:")
	m := out[0].F32()
	for i := 0; i < 3; i++ {
		fmt.Printf("  [%8.4f %8.4f %8.4f]\n", m[i*3], m[i*3+1], m[i*3+2])
	}

	// The graph is a language-independent artifact: serialize and reopen.
	buf, err := tf.MarshalGraph(g)
	if err != nil {
		log.Fatal(err)
	}
	g2, err := tf.UnmarshalGraph(buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph round-trips through %d bytes of GraphDef (%d nodes)\n",
		len(buf), g2.NumNodes())

	if err := trace.WriteFile("quickstart_timeline.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("timeline written to quickstart_timeline.json (chrome://tracing)")
}
