// Package tf is the public facade of the runtime — the API surface a user
// program imports, mirroring the shape of the TensorFlow Python API the
// paper's applications are written against: build a Graph with device
// placement, run it through a Session, scale out with a cluster of Servers
// resolved from Slurm, keep state in variables and stream data through FIFO
// queues and Datasets.
//
// A minimal program (the paper's Listing 1):
//
//	g := tf.NewGraph()
//	var a, b, c *tf.Node
//	g.WithDevice("/cpu:0", func() {
//		a = g.AddOp("RandomUniform", tf.Attrs{"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 1})
//		b = g.AddOp("RandomUniform", tf.Attrs{"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 2})
//	})
//	g.WithDevice("/gpu:0", func() { c = g.AddOp("MatMul", nil, a, b) })
//	sess, _ := tf.NewSession(g, nil, tf.Options{})
//	out, _ := sess.Run(nil, []string{c.Name()}, nil)
package tf

import (
	"tfhpc/internal/checkpoint"
	"tfhpc/internal/cluster"
	"tfhpc/internal/dataset"
	"tfhpc/internal/graph"
	"tfhpc/internal/queue"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
	"tfhpc/internal/timeline"
)

// Tensor types.
type (
	// Tensor is a dense n-rank array, the value on every graph edge.
	Tensor = tensor.Tensor
	// DType enumerates element types.
	DType = tensor.DType
	// Shape is the per-dimension extent list.
	Shape = tensor.Shape
	// RNG is the deterministic generator used across the library.
	RNG = tensor.RNG
)

// Element dtypes.
const (
	Float32    = tensor.Float32
	Float64    = tensor.Float64
	Complex64  = tensor.Complex64
	Complex128 = tensor.Complex128
	Int32      = tensor.Int32
	Int64      = tensor.Int64
	Bool       = tensor.Bool
)

// Tensor constructors.
var (
	NewTensor     = tensor.New
	FromF32       = tensor.FromF32
	FromF64       = tensor.FromF64
	FromC128      = tensor.FromC128
	FromI64       = tensor.FromI64
	ScalarF32     = tensor.ScalarF32
	ScalarF64     = tensor.ScalarF64
	ScalarI64     = tensor.ScalarI64
	RandomUniform = tensor.RandomUniform
	NewRNG        = tensor.NewRNG
)

// Graph construction.
type (
	// Graph is a dataflow graph under construction or execution.
	Graph = graph.Graph
	// Node is one operation instance.
	Node = graph.Node
	// Attrs carries node attributes.
	Attrs = graph.Attrs
	// DeviceSpec is a parsed "/job:worker/task:0/device:GPU:0" placement.
	DeviceSpec = graph.DeviceSpec
)

var (
	// NewGraph returns an empty graph.
	NewGraph = graph.New
	// ParseDevice parses a device string.
	ParseDevice = graph.ParseDevice
	// MarshalGraph serializes a graph (bounded at 2 GiB, as in TF).
	MarshalGraph = graph.MarshalGraph
	// UnmarshalGraph reopens a serialized graph.
	UnmarshalGraph = graph.UnmarshalGraph
)

// Session execution.
type (
	// Session executes a graph against task-local resources.
	Session = session.Session
	// Options configures locality, remote forwarding and tracing.
	Options = session.Options
	// Resources hosts a task's variables and queues.
	Resources = session.Resources
)

var (
	// NewSession binds a validated graph to resources.
	NewSession = session.New
	// NewResources allocates fresh variable and queue stores.
	NewResources = session.NewResources
)

// Distributed runtime.
type (
	// ClusterSpec maps job names to task addresses (Listing 2).
	ClusterSpec = cluster.Spec
	// Server is one task: it owns resources and serves remote ops.
	Server = cluster.Server
	// Peers is the client side of a cluster; it implements the session's
	// RemoteRunner.
	Peers = cluster.Peers
	// SlurmResolver derives a ClusterSpec from a Slurm allocation.
	SlurmResolver = cluster.SlurmResolver
	// JobSpec names a job and its task count for the resolver.
	JobSpec = cluster.JobSpec
	// LocalCluster is an in-process loopback cluster for tests and examples.
	LocalCluster = cluster.Local
)

var (
	// NewServer creates a task server.
	NewServer = cluster.NewServer
	// NewPeers dials a cluster.
	NewPeers = cluster.NewPeers
	// StartLocalCluster boots one server per task on loopback TCP.
	StartLocalCluster = cluster.StartLocal
)

// Data pipeline.
type (
	// Dataset is a re-iterable sequence of tensor tuples.
	Dataset = dataset.Dataset
	// Iterator walks one dataset pass.
	Iterator = dataset.Iterator
	// FIFOQueue is a bounded blocking queue of tensor tuples.
	FIFOQueue = queue.FIFO
)

var (
	// FromElements builds an in-memory dataset.
	FromElements = dataset.FromElements
	// FromFiles builds a dataset of (index, tensor) from .npy files.
	FromFiles = dataset.FromFiles
	// ShardDataset splits a dataset across workers.
	ShardDataset = dataset.Shard
	// PrefetchDataset overlaps production with consumption.
	PrefetchDataset = dataset.Prefetch
	// MapDataset transforms elements lazily.
	MapDataset = dataset.Map
	// NewQueue creates a FIFO queue (capacity 0 = unbounded).
	NewQueue = queue.New
)

// State and tooling.
type (
	// Checkpoint is a saved variable snapshot with graph identity and step.
	Checkpoint = checkpoint.Checkpoint
	// Timeline collects per-op spans in Chrome trace format (Fig. 3).
	Timeline = timeline.Trace
)

var (
	// CaptureCheckpoint snapshots a session's variables.
	CaptureCheckpoint = checkpoint.Capture
	// LoadCheckpoint reads a checkpoint file.
	LoadCheckpoint = checkpoint.Load
	// RestoreCheckpoint loads and applies a checkpoint file.
	RestoreCheckpoint = checkpoint.Restore
	// NewTimeline starts an empty trace.
	NewTimeline = timeline.New
)
