package tf_test

import (
	"path/filepath"
	"sync"
	"testing"

	"tfhpc/tf"
)

// TestListing1 exercises the facade end to end the way the package doc
// advertises.
func TestListing1(t *testing.T) {
	g := tf.NewGraph()
	var a, b, c *tf.Node
	g.WithDevice("/cpu:0", func() {
		a = g.AddOp("RandomUniform", tf.Attrs{"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 1})
		b = g.AddOp("RandomUniform", tf.Attrs{"dtype": tf.Float32, "shape": tf.Shape{3, 3}, "seed": 2})
	})
	g.WithDevice("/gpu:0", func() { c = g.AddOp("MatMul", nil, a, b) })
	sess, err := tf.NewSession(g, nil, tf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(nil, []string{c.Name()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out[0].Shape().Equal(tf.Shape{3, 3}) {
		t.Fatalf("shape %v", out[0].Shape())
	}
}

// TestDistributedFacade stands up a ps/worker cluster through the facade
// and runs remote variable updates with a timeline attached.
func TestDistributedFacade(t *testing.T) {
	lc, err := tf.StartLocalCluster(map[string]int{"ps": 1, "worker": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := tf.NewPeers(lc.Spec())
	defer peers.Close()

	trace := tf.NewTimeline()
	runWorker := func(task int) error {
		g := tf.NewGraph()
		var push, init *tf.Node
		g.WithDevice("/job:ps/task:0", func() {
			init = g.AddNamedOp("init", "Assign", tf.Attrs{"var_name": "w"},
				g.Const(tf.NewTensor(tf.Float64, 4)))
			push = g.AddNamedOp("push", "AssignAdd", tf.Attrs{"var_name": "w"},
				g.Const(tf.FromF64(tf.Shape{4}, []float64{1, 1, 1, 1})))
			push.AddControlDep(init)
		})
		sess, err := tf.NewSession(g, nil, tf.Options{
			LocalJob: "worker", LocalTask: task, Remote: peers, Trace: trace,
		})
		if err != nil {
			return err
		}
		_, err = sess.Run(nil, nil, []string{"push"})
		return err
	}
	// Init must happen once before the concurrent pushes; worker 0 runs
	// first (its graph carries the control dependency).
	if err := runWorker(0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for task := 0; task < 2; task++ {
		wg.Add(1)
		go func(task int) {
			defer wg.Done()
			g := tf.NewGraph()
			var push *tf.Node
			g.WithDevice("/job:ps/task:0", func() {
				push = g.AddNamedOp("push", "AssignAdd", tf.Attrs{"var_name": "w"},
					g.Const(tf.FromF64(tf.Shape{4}, []float64{1, 1, 1, 1})))
			})
			sess, err := tf.NewSession(g, nil, tf.Options{
				LocalJob: "worker", LocalTask: task, Remote: peers,
			})
			if err != nil {
				errs <- err
				return
			}
			if _, err := sess.Run(nil, nil, []string{push.Name()}); err != nil {
				errs <- err
			}
		}(task)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	// 3 pushes total (1 init run + 2 concurrent).
	got, err := lc.Server("ps", 0).Res.Vars.Get("w").Read()
	if err != nil {
		t.Fatal(err)
	}
	if got.F64()[0] != 3 {
		t.Fatalf("w = %v, want 3 pushes", got.F64())
	}
	if trace.Len() == 0 {
		t.Fatal("timeline collected nothing")
	}
}

// TestCheckpointFacade round-trips variables through the facade names.
func TestCheckpointFacade(t *testing.T) {
	res := tf.NewResources()
	res.Vars.Get("x").Assign(tf.ScalarF64(2.5))
	path := filepath.Join(t.TempDir(), "ck")
	if err := tf.CaptureCheckpoint("t:v1", 7, res.Vars).Save(path); err != nil {
		t.Fatal(err)
	}
	fresh := tf.NewResources()
	step, err := tf.RestoreCheckpoint(path, "t:v1", fresh.Vars)
	if err != nil || step != 7 {
		t.Fatalf("restore: %v step %d", err, step)
	}
	v, _ := fresh.Vars.Get("x").Read()
	if v.ScalarFloat() != 2.5 {
		t.Fatal("value lost")
	}
}

// TestDatasetFacade runs the pipeline composition through the aliases.
func TestDatasetFacade(t *testing.T) {
	ds := tf.FromElements(
		[]*tf.Tensor{tf.ScalarI64(0)},
		[]*tf.Tensor{tf.ScalarI64(1)},
		[]*tf.Tensor{tf.ScalarI64(2)},
		[]*tf.Tensor{tf.ScalarI64(3)},
	)
	it := tf.PrefetchDataset(tf.ShardDataset(ds, 2, 0), 2).Iterator()
	var got []int64
	for {
		e, err := it.Next()
		if err != nil {
			break
		}
		got = append(got, e[0].ScalarInt())
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("shard through facade = %v", got)
	}
}

// TestQueueFacade checks the queue alias works for cross-goroutine flows.
func TestQueueFacade(t *testing.T) {
	q := tf.NewQueue(1)
	done := make(chan int64, 1)
	go func() {
		item, err := q.Dequeue()
		if err != nil {
			t.Error(err)
			return
		}
		done <- item[0].ScalarInt()
	}()
	if err := q.Enqueue([]*tf.Tensor{tf.ScalarI64(9)}); err != nil {
		t.Fatal(err)
	}
	if v := <-done; v != 9 {
		t.Fatalf("got %d", v)
	}
}
