module tfhpc

go 1.23
