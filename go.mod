module tfhpc

go 1.24
