package stream

import (
	"testing"

	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

func TestRunSimValidation(t *testing.T) {
	_, err := RunSim(SimConfig{
		Cluster:  hw.Tegner,
		NodeType: hw.Tegner.NodeTypes["k420"],
	})
	if err == nil {
		t.Fatal("zero size should error")
	}
}

func TestSimBandwidthOrderingTegner(t *testing.T) {
	bw := func(proto simnet.Protocol) float64 {
		res, err := RunSim(SimConfig{
			Cluster:   hw.Tegner,
			NodeType:  hw.Tegner.NodeTypes["k420"],
			Protocol:  proto,
			Placement: simnet.OnGPU,
			SizeBytes: 128 << 20,
			Iters:     100,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps
	}
	grpc, mpi, rdma := bw(simnet.GRPC), bw(simnet.MPI), bw(simnet.RDMA)
	if !(grpc < mpi && mpi < rdma) {
		t.Fatalf("ordering: grpc=%.0f mpi=%.0f rdma=%.0f", grpc, mpi, rdma)
	}
}

func TestFig7BarsMatchPaperTargets(t *testing.T) {
	rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// 3 protocols x 3 platforms.
	if len(rows) != 9 {
		t.Fatalf("rows %d", len(rows))
	}
	get := func(label string, proto simnet.Protocol, size int64) float64 {
		for _, r := range rows {
			if r.Label == label && r.Protocol == proto {
				return r.MBps[size]
			}
		}
		t.Fatalf("missing row %s/%v", label, proto)
		return 0
	}
	big := int64(128 << 20)
	// Section VI.A headline numbers.
	if v := get("Tegner CPU", simnet.RDMA, big); v < 5800 || v > 6700 {
		t.Fatalf("Tegner CPU RDMA = %.0f, paper >6000", v)
	}
	if v := get("Tegner GPU", simnet.RDMA, big); v < 1150 || v > 1450 {
		t.Fatalf("Tegner GPU RDMA = %.0f, paper ~1300", v)
	}
	if v := get("Kebnekaise GPU", simnet.RDMA, big); v < 1900 || v > 2300 {
		t.Fatalf("Kebnekaise GPU RDMA = %.0f, paper <2300", v)
	}
	if v := get("Tegner GPU", simnet.MPI, big); v < 270 || v > 370 {
		t.Fatalf("Tegner GPU MPI = %.0f, paper ~318", v)
	}
	if v := get("Kebnekaise GPU", simnet.MPI, big); v < 420 || v > 540 {
		t.Fatalf("Kebnekaise GPU MPI = %.0f, paper ~480", v)
	}
	// Every bar grows with message size.
	for _, r := range rows {
		if !(r.MBps[2<<20] <= r.MBps[16<<20] && r.MBps[16<<20] <= r.MBps[128<<20]) {
			t.Fatalf("%s/%v: no growth across sizes: %v", r.Label, r.Protocol, r.MBps)
		}
	}
}

// The real driver moves actual float32 tensors over loopback TCP and
// accumulates them on the ps task.
func TestRunRealAccumulates(t *testing.T) {
	res, err := RunReal(RealConfig{Elements: 1 << 12, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MBps <= 0 {
		t.Fatalf("bandwidth %v", res.MBps)
	}
	if res.Bytes != 5*(1<<12)*4 {
		t.Fatalf("bytes %d", res.Bytes)
	}
	// Five pushes of vectors drawn from [0,1): the accumulated PS vector
	// must be strictly positive and bounded by 5.
	for _, v := range res.Final.F32() {
		if v <= 0 || v >= 5 {
			t.Fatalf("accumulated element %v out of (0,5)", v)
		}
	}
}

func TestRunRealValidation(t *testing.T) {
	if _, err := RunReal(RealConfig{}); err == nil {
		t.Fatal("empty config should error")
	}
}
