package stream

import (
	"fmt"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealConfig drives an actual distributed run over TCP: a ps task and a
// worker task, with the worker pushing its vector into the ps variable via
// assign_add — exactly the paper's formulation, with real tensors moving
// over a real transport.
type RealConfig struct {
	// Elements is the vector length (float32), so bytes = 4·Elements.
	Elements int
	Iters    int
}

// RealResult reports the measured wall-clock bandwidth.
type RealResult struct {
	Bytes   int64
	Seconds float64
	MBps    float64
	// Final is the accumulated PS vector, for verification.
	Final *tensor.Tensor
}

// RunReal boots an in-process ps+worker cluster on loopback TCP, streams
// Iters assign_add invocations, and reports MB/s. Following the paper, the
// session run uses the operation as a *target* with no fetches, so the
// accumulated tensor is never returned to the driver during timing.
func RunReal(cfg RealConfig) (*RealResult, error) {
	if cfg.Elements <= 0 || cfg.Iters <= 0 {
		return nil, fmt.Errorf("stream: need positive elements and iters")
	}
	lc, err := cluster.StartLocal(map[string]int{"ps": 1, "worker": 1})
	if err != nil {
		return nil, err
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	g := graph.New()
	var vec, push, init, read *graph.Node
	g.WithDevice("/job:worker/task:0/device:GPU:0", func() {
		vec = g.AddNamedOp("v", "RandomUniform", graph.Attrs{
			"dtype": tensor.Float32, "shape": tensor.Shape{cfg.Elements}, "seed": 7})
	})
	g.WithDevice("/job:ps/task:0/device:GPU:0", func() {
		init = g.AddNamedOp("init", "Assign", graph.Attrs{"var_name": "acc"},
			g.Const(tensor.New(tensor.Float32, cfg.Elements)))
		push = g.AddNamedOp("push", "AssignAdd", graph.Attrs{"var_name": "acc"}, vec)
		read = g.AddNamedOp("read", "Variable", graph.Attrs{"var_name": "acc"})
	})

	sess, err := session.New(g, nil, session.Options{
		LocalJob: "worker", LocalTask: 0, Remote: peers,
	})
	if err != nil {
		return nil, err
	}
	if _, err := sess.Run(nil, nil, []string{init.Name()}); err != nil {
		return nil, err
	}

	start := time.Now()
	for i := 0; i < cfg.Iters; i++ {
		// Target only — no fetch — to avoid the extra return transfer the
		// paper explicitly excludes from the measurement.
		if _, err := sess.Run(nil, nil, []string{push.Name()}); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()

	final, err := sess.Run(nil, []string{read.Name()}, nil)
	if err != nil {
		return nil, err
	}
	bytes := int64(cfg.Iters) * int64(cfg.Elements) * 4
	return &RealResult{
		Bytes:   bytes,
		Seconds: elapsed,
		MBps:    float64(bytes) / elapsed / 1e6,
		Final:   final[0],
	}, nil
}
