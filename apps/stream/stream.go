// Package stream implements the paper's STREAM-like micro-benchmark: a
// vector lives on a worker and a parameter server; an assign_add operation
// pushes the worker's vector to the PS and accumulates it there. Invoking
// the operation repeatedly creates a stream of tensor transfers whose
// average rate estimates the sustained inter-node bandwidth for the chosen
// transport (gRPC, MPI or InfiniBand verbs RDMA).
//
// Two drivers share the formulation: a real driver that runs the graph over
// a TCP cluster with wall-clock timing, and a virtual driver that evaluates
// the transport models of internal/simnet on the paper's platforms,
// regenerating Fig. 7.
package stream

import (
	"fmt"

	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

// SimConfig selects one bar of Fig. 7.
type SimConfig struct {
	Cluster   *hw.Cluster
	NodeType  *hw.NodeType
	Protocol  simnet.Protocol
	Placement simnet.Placement // tensors on CPU or GPU memory
	SizeBytes int64
	// Invocations of the assign_add stream; the paper uses 100.
	Iters int
}

// SimResult is one measured bar.
type SimResult struct {
	Config SimConfig
	MBps   float64
	// Seconds is the total virtual time of the stream.
	Seconds float64
}

// RunSim evaluates the transport model: Iters back-to-back transfers of
// SizeBytes plus the PS-side accumulation (a streaming add at host or
// device memory bandwidth).
func RunSim(cfg SimConfig) (*SimResult, error) {
	if cfg.Iters <= 0 {
		cfg.Iters = 100
	}
	if cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("stream: need a positive transfer size")
	}
	perTransfer := simnet.TransferTime(cfg.Cluster, cfg.NodeType, cfg.Protocol,
		cfg.Placement, cfg.Placement, cfg.SizeBytes)
	// assign_add touches 3 vectors' worth of memory at the destination; in
	// the steady-state stream of invocations it pipelines behind the next
	// transfer, so the slower of the two paces the run.
	var addBW float64
	if cfg.Placement == simnet.OnGPU {
		addBW = cfg.NodeType.GPU.MemBW
	} else {
		addBW = cfg.NodeType.HostMemBW
	}
	perAdd := 3 * float64(cfg.SizeBytes) / addBW
	perIter := perTransfer
	if perAdd > perIter {
		perIter = perAdd
	}
	total := float64(cfg.Iters) * perIter
	return &SimResult{
		Config:  cfg,
		Seconds: total,
		MBps:    simnet.BandwidthMBps(int64(cfg.Iters)*cfg.SizeBytes, total),
	}, nil
}

// Fig7Row is one bar group of Fig. 7: a platform+placement under one
// protocol, at the paper's three transfer sizes.
type Fig7Row struct {
	Label    string
	Protocol simnet.Protocol
	MBps     map[int64]float64 // size in bytes -> MB/s
}

// Fig7Sizes are the paper's transfer sizes: 2, 16 and 128 MB.
var Fig7Sizes = []int64{2 << 20, 16 << 20, 128 << 20}

// Fig7Platforms are the paper's three measured configurations.
var Fig7Platforms = []struct {
	Label     string
	Cluster   *hw.Cluster
	Node      string
	Placement simnet.Placement
}{
	{"Tegner GPU", hw.Tegner, "k420", simnet.OnGPU},
	{"Tegner CPU", hw.Tegner, "k420", simnet.OnCPU},
	{"Kebnekaise GPU", hw.Kebnekaise, "k80", simnet.OnGPU},
}

// Fig7 regenerates every bar of the figure.
func Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, proto := range []simnet.Protocol{simnet.GRPC, simnet.MPI, simnet.RDMA} {
		for _, p := range Fig7Platforms {
			row := Fig7Row{
				Label:    p.Label,
				Protocol: proto,
				MBps:     map[int64]float64{},
			}
			for _, size := range Fig7Sizes {
				res, err := RunSim(SimConfig{
					Cluster:   p.Cluster,
					NodeType:  p.Cluster.NodeTypes[p.Node],
					Protocol:  proto,
					Placement: p.Placement,
					SizeBytes: size,
					Iters:     100,
				})
				if err != nil {
					return nil, err
				}
				row.MBps[size] = res.MBps
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
