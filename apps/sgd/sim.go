package sgd

import (
	"fmt"

	"tfhpc/internal/core"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

// SimConfig describes one data-parallel deployment on the virtual platform.
type SimConfig struct {
	Cluster  *hw.Cluster
	NodeType *hw.NodeType
	Protocol simnet.Protocol
	Config
}

// SimResult is the virtual-time outcome of one training deployment.
type SimResult struct {
	StepSeconds    float64 // one synchronous step, end to end
	ComputeSeconds float64 // per-step on-GPU share
	RingSeconds    float64 // ring allreduce of the gradient
	NaiveSeconds   float64 // gather-to-root + broadcast baseline
	RingSpeedup    float64 // NaiveSeconds / RingSeconds
	Seconds        float64 // whole run
	Gflops         float64
}

// RunSim evaluates the per-step cost model:
//
//	compute   = 2 matvecs on the shard + 3 vector ops       (per GPU)
//	ring      = 2(p−1) pipelined hops of d/p gradient bytes
//	naive     = 2(p−1) serial transfers of the full gradient
//	           through the root — the parameter-server shape
//
// The comparison is the paper's Section VIII argument in numbers: the ring
// keeps per-step communication constant as p grows, while the central
// reduction's wall time scales with p.
func RunSim(sc SimConfig) (*SimResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Cluster == nil || sc.NodeType == nil {
		return nil, fmt.Errorf("sgd: sim needs a cluster and node type")
	}
	gpu := sc.NodeType.GPU
	m, d, p := sc.RowsPerWorker, sc.Features, sc.Workers

	compute := gpu.MatVecTime(m, d, true) + gpu.MatVecTime(d, m, true) +
		3*gpu.VectorOpTime(int64(maxInt(m, d))*8)

	segBytes := int64((d+p-1)/p) * 8
	hop := simnet.TransferTime(sc.Cluster, sc.NodeType, sc.Protocol, simnet.OnGPU, simnet.OnGPU, segBytes)
	ring := float64(2*(p-1)) * hop
	full := simnet.TransferTime(sc.Cluster, sc.NodeType, sc.Protocol, simnet.OnGPU, simnet.OnGPU, int64(d)*8)
	naive := float64(2*(p-1)) * full
	if p == 1 {
		ring, naive = 0, 0
	}

	step := compute + ring
	total := float64(sc.Steps) * step
	// Two matvecs (2·2·m·d flops) per worker per step.
	flops := float64(sc.Steps) * 4 * float64(m) * float64(d) * float64(p)
	speedup := 1.0
	if ring > 0 {
		speedup = naive / ring
	}
	return &SimResult{
		StepSeconds:    step,
		ComputeSeconds: compute,
		RingSeconds:    ring,
		NaiveSeconds:   naive,
		RingSpeedup:    speedup,
		Seconds:        total,
		Gflops:         core.Gflops(flops, total),
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
