package sgd

import (
	"fmt"
	"sync"

	"tfhpc/internal/collective"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// In-process elastic deployment: replicas share one Resources store and talk
// over loopback fabrics, one fresh fabric per generation. A kill closes the
// task's endpoint — poisoning the fabric exactly the way a dying process
// poisons its group — and the task stays "dead" to probes for SimRevive
// boundary polls, which is how the property tests drive deterministic
// shrink-then-grow histories without real processes.

type loopbackElastic struct {
	cfg  Config
	opts ElasticOptions
	res  *session.Resources

	mu        sync.Mutex
	active    []int
	groups    []*collective.Group
	groupIDs  []string
	down      map[int]int // task -> remaining announced() polls before revival
	neverBack map[int]bool
}

func elasticLoopGroup(gen, slot int) string { return fmt.Sprintf("sgd/g%d/w%d", gen, slot) }

func newLoopbackElastic(cfg Config, opts ElasticOptions) *loopbackElastic {
	return &loopbackElastic{
		cfg:       cfg,
		opts:      opts,
		res:       session.NewResources(),
		down:      make(map[int]int),
		neverBack: make(map[int]bool),
	}
}

func (b *loopbackElastic) setup(active []int, gen int) ([]*session.Session, error) {
	b.closeGroups()
	p := len(active)
	groups := collective.NewLoopbackGroups(p, collective.Options{Fusion: b.cfg.fusionOptions()})
	ids := make([]string, p)
	for slot, grp := range groups {
		ids[slot] = elasticLoopGroup(gen, slot)
		b.res.Colls.Register(ids[slot], grp)
	}
	b.mu.Lock()
	b.active = append([]int(nil), active...)
	b.groups = groups
	b.groupIDs = ids
	b.mu.Unlock()

	sessions := make([]*session.Session, p)
	for slot := range sessions {
		sess, err := session.New(buildWorkerPre(b.cfg, elasticPre(gen, slot), ids[slot], ""), b.res, session.Options{})
		if err != nil {
			return nil, err
		}
		sessions[slot] = sess
	}
	return sessions, nil
}

func (b *loopbackElastic) assign(_ []int, _ int, name string, val *tensor.Tensor) error {
	b.res.Vars.Get(name).Assign(val)
	return nil
}

func (b *loopbackElastic) read(_ []int, _ int, name string) (*tensor.Tensor, error) {
	return b.res.Vars.Get(name).Read()
}

func (b *loopbackElastic) abort(int) { b.closeGroups() }

// closeGroups tears the current generation's memberships down (closing a
// group poisons the shared fabric, so any rank still blocked errors out).
func (b *loopbackElastic) closeGroups() {
	b.mu.Lock()
	ids := b.groupIDs
	b.groupIDs = nil
	b.groups = nil
	b.mu.Unlock()
	for _, id := range ids {
		b.res.Colls.Close(id)
	}
}

func (b *loopbackElastic) probe(task int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dead := b.down[task]; dead || b.neverBack[task] {
		return fmt.Errorf("sgd: task %d is down", task)
	}
	return nil
}

func (b *loopbackElastic) announced(task int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.neverBack[task] {
		return false
	}
	left, dead := b.down[task]
	if !dead {
		return true
	}
	left--
	if left > 0 {
		b.down[task] = left
		return false
	}
	delete(b.down, task)
	return true
}

func (b *loopbackElastic) kill(task int) {
	if b.opts.Kill != nil {
		b.opts.Kill(task)
		return
	}
	b.mu.Lock()
	slot := -1
	for s, t := range b.active {
		if t == task {
			slot = s
		}
	}
	var grp *collective.Group
	if slot >= 0 && slot < len(b.groups) {
		grp = b.groups[slot]
	}
	if b.opts.SimRevive < 0 {
		b.neverBack[task] = true
	} else {
		polls := b.opts.SimRevive
		if polls == 0 {
			polls = 1
		}
		b.down[task] = polls
	}
	b.mu.Unlock()
	if grp != nil {
		grp.Close()
	}
}

func (b *loopbackElastic) close() {
	b.closeGroups()
	b.res.Colls.CloseAll()
}

// RunElasticReal trains elastically in-process: loopback fabrics, simulated
// kills via the fault plan, deterministic revival after SimRevive boundary
// polls.
func RunElasticReal(cfg Config, opts ElasticOptions) (*ElasticResult, error) {
	be := newLoopbackElastic(cfg, opts)
	defer be.close()
	return runElastic(cfg, be, opts)
}
