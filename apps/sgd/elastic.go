package sgd

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/collective"
	"tfhpc/internal/gemm"
	"tfhpc/internal/session"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// Elastic training: Horovod-elastic semantics on our own engine. The run
// survives rank loss instead of dying with it — the driver detects the
// casualty, rebuilds the collective group over the survivors under a fresh
// generation (higher epoch, so the transports fence out the dead
// incarnation's traffic), reshards the global dataset across the new
// membership, restores weights from the last barrier-bracketed checkpoint,
// and continues. When the lost task answers health probes again it is folded
// back in at the next checkpoint boundary and the group returns to full
// width.
//
// The full-batch gradient is a sum over the global dataset, so it is
// independent of how many workers the rows are sharded across (up to
// floating-point grouping) — a shrunken group walks the same loss trajectory
// as the full one, which is what makes "converges within tolerance of an
// uninterrupted run" a meaningful acceptance bar rather than a vague hope.

// ElasticOptions tune an elastic run.
type ElasticOptions struct {
	// CkptPath is the checkpoint file. Saves are atomic (temp + rename) and
	// CRC-trailered; resume reads this file, so a corrupt checkpoint fails
	// the run loudly with checkpoint.ErrCorrupt. Empty keeps checkpoints in
	// memory only.
	CkptPath string
	// CkptEvery takes a checkpoint every K steps (default 5). Boundaries are
	// barrier-bracketed: every rank finishes the step before rank 0's
	// weights are read, and grow-back also happens only at boundaries.
	CkptEvery int
	// MinWorkers fails the run when the live membership drops below it
	// (default 1).
	MinWorkers int
	// StepDelay sleeps before every step — CI uses it to widen the window a
	// kill -9 must land in.
	StepDelay time.Duration
	// Plan injects deterministic faults (CrashRank/CrashAtStep kills that
	// task at the start of that step, once). The zero value injects nothing.
	Plan simnet.FaultPlan
	// SimRevive is how many boundary probes a simulated kill stays dead for
	// before the in-process backends report the task alive again (default 1
	// = revived at the next boundary; -1 = never returns). Real clusters
	// ignore it — a restarted task answers real health probes.
	SimRevive int
	// Kill overrides the backend's crash injection (cluster tests close and
	// later restart the task's server with it).
	Kill func(task int)
	// Logf receives membership events (shrink, resume, grow). nil discards.
	Logf func(format string, args ...any)
}

func (o ElasticOptions) ckptEvery() int {
	if o.CkptEvery <= 0 {
		return 5
	}
	return o.CkptEvery
}

func (o ElasticOptions) minWorkers() int {
	if o.MinWorkers <= 0 {
		return 1
	}
	return o.MinWorkers
}

func (o ElasticOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// ElasticResult extends Result with the membership history.
type ElasticResult struct {
	Result
	// Shrinks counts memberships rebuilt smaller after a casualty.
	Shrinks int
	// Grows counts memberships rebuilt wider after a task came back.
	Grows int
	// Rebuilds counts group constructions, the initial one included.
	Rebuilds int
	// Resumes counts checkpoint restores.
	Resumes int
	// FinalWorkers is the width of the last membership.
	FinalWorkers int
}

// elasticBackend is what the generation loop needs from a deployment: build
// a membership, move variables, probe liveness, crash on demand. active[i]
// is the task hosting rank/slot i.
type elasticBackend interface {
	setup(active []int, gen int) ([]*session.Session, error)
	assign(active []int, slot int, name string, val *tensor.Tensor) error
	read(active []int, slot int, name string) (*tensor.Tensor, error)
	abort(gen int)
	probe(task int) error
	announced(task int) bool
	kill(task int)
	close()
}

// elasticPre is the generation-qualified variable prefix of one slot. Shard
// sizes change with membership width, so a task must never reuse an earlier
// generation's variables — the generation in the name guarantees it.
func elasticPre(gen, slot int) string { return fmt.Sprintf("g%d/w%d/", gen, slot) }

// globalData materialises the full-width dataset: the concatenation of every
// worker's Shard, so elastic runs of any membership history (and the
// uninterrupted baseline) train on identical rows.
func globalData(cfg Config) (x, y *tensor.Tensor) {
	d := cfg.Features
	xv := make([]float64, cfg.TotalRows()*d)
	yv := make([]float64, cfg.TotalRows())
	for w := 0; w < cfg.Workers; w++ {
		sx, sy := Shard(cfg, w)
		copy(xv[w*cfg.RowsPerWorker*d:], sx.F64())
		copy(yv[w*cfg.RowsPerWorker:], sy.F64())
	}
	return tensor.FromF64(tensor.Shape{cfg.TotalRows(), d}, xv),
		tensor.FromF64(tensor.Shape{cfg.TotalRows()}, yv)
}

// varInit is one (variable, value) assignment.
type varInit struct {
	Name string
	Val  *tensor.Tensor
}

// elasticInit lists slot's variables for a p-member generation: its segment
// of the global dataset (rows SegBounds(M, p, slot)), the packed transpose,
// and the carried weight vector.
func elasticInit(cfg Config, gx, gy *tensor.Tensor, p, slot int, pre string, w *tensor.Tensor) []varInit {
	d := cfg.Features
	lo, hi := collective.SegBounds(cfg.TotalRows(), p, slot)
	m := hi - lo
	x := tensor.FromF64(tensor.Shape{m, d}, gx.F64()[lo*d:hi*d])
	y := tensor.FromF64(tensor.Shape{m}, gy.F64()[lo:hi])
	xtv := make([]float64, d*m)
	gemm.Transpose64(m, d, x.F64(), xtv)

	out := []varInit{{pre + "X", x}, {pre + "y", y}}
	if !cfg.multiTensor() {
		out = append(out,
			varInit{pre + "Xt", tensor.FromF64(tensor.Shape{d, m}, xtv)},
			varInit{pre + "w", w.Clone()})
		return out
	}
	T := cfg.paramTensors()
	wv := w.F64()
	for t := 0; t < T; t++ {
		tlo, thi := chunkBounds(d, T, t)
		out = append(out,
			varInit{fmt.Sprintf("%sXt%d", pre, t), tensor.FromF64(tensor.Shape{thi - tlo, m}, xtv[tlo*m:thi*m])},
			varInit{weightVarName(pre, t), tensor.FromF64(tensor.Shape{thi - tlo}, append([]float64(nil), wv[tlo:thi]...))})
	}
	return out
}

// elasticTargets are the per-step assign targets of either graph shape.
func elasticTargets(cfg Config) []string {
	if !cfg.multiTensor() {
		return []string{"save_w"}
	}
	ts := make([]string, cfg.paramTensors())
	for t := range ts {
		ts[t] = saveTarget(t)
	}
	return ts
}

// eachSlot runs f concurrently for every slot and returns the first error.
func eachSlot(n int, f func(slot int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func elasticGraphID(cfg Config) string {
	return fmt.Sprintf("sgd-elastic:d%d:T%d", cfg.Features, cfg.paramTensors())
}

// runElastic is the generation loop shared by the loopback and cluster
// deployments.
func runElastic(cfg Config, be elasticBackend, opts ElasticOptions) (*ElasticResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if (opts.Plan == simnet.FaultPlan{}) {
		opts.Plan = simnet.NewFaultPlan()
	}
	gx, gy := globalData(cfg)
	graphID := elasticGraphID(cfg)
	targets := elasticTargets(cfg)
	feeds := map[string]*tensor.Tensor{"lr": tensor.ScalarF64(cfg.LR)}

	// The running checkpoint: weights + completed steps, mirrored to disk
	// when a path is configured. Resume reads the file back so the on-disk
	// integrity trailer is on the real recovery path.
	ckptW := tensor.New(tensor.Float64, cfg.Features)
	ckptStep := 0
	saveCkpt := func() error {
		if opts.CkptPath == "" {
			return nil
		}
		ck := &checkpoint.Checkpoint{
			GraphID: graphID,
			Step:    int64(ckptStep),
			Vars:    map[string]*tensor.Tensor{"w": ckptW},
		}
		return ck.Save(opts.CkptPath)
	}
	restoreCkpt := func() error {
		if opts.CkptPath == "" {
			return nil // in-memory ckptW/ckptStep are already the snapshot
		}
		c, err := checkpoint.Load(opts.CkptPath)
		if err != nil {
			return err
		}
		if c.GraphID != graphID {
			return fmt.Errorf("sgd: checkpoint graph %q, want %q", c.GraphID, graphID)
		}
		w, ok := c.Vars["w"]
		if !ok {
			return fmt.Errorf("sgd: checkpoint has no weight tensor")
		}
		ckptW, ckptStep = w, int(c.Step)
		return nil
	}
	if err := saveCkpt(); err != nil {
		return nil, err
	}

	active := make([]int, cfg.Workers)
	for i := range active {
		active[i] = i
	}
	res := &ElasticResult{}
	var firstLoss float64
	firstSeen := false
	var lastLoss float64
	killed := make(map[int]bool)
	start := time.Now()

	// shrink handles one membership failure: unblock the group, find the
	// survivors, restore the checkpoint. Returns the fatal error, if any.
	shrink := func(gen int, cause error) error {
		be.abort(gen)
		alive := make([]int, 0, len(active))
		for _, t := range active {
			if be.probe(t) == nil {
				alive = append(alive, t)
			}
		}
		if len(alive) < opts.minWorkers() {
			return fmt.Errorf("sgd: %d live workers (< %d) after failure: %w", len(alive), opts.minWorkers(), cause)
		}
		if len(alive) == len(active) {
			// Everyone answers but the step failed — a torn group (e.g. the
			// casualty restarted fast enough to pass the probe). Rebuild at
			// the same width; the retry guard bounds how often.
			opts.logf("sgd: elastic: step failed with all %d tasks live (%v), rebuilding", len(active), cause)
		} else {
			res.Shrinks++
			opts.logf("sgd: elastic: shrink %d -> %d tasks (%v)", len(active), len(alive), cause)
		}
		if err := restoreCkpt(); err != nil {
			return fmt.Errorf("sgd: resume after failure: %w", err)
		}
		res.Resumes++
		opts.logf("sgd: elastic: resumed from checkpoint step %d", ckptStep)
		active = alive
		return nil
	}

	maxRebuilds := 8 + 4*cfg.Workers
	gen := 0
	for ckptStep < cfg.Steps {
		gen++
		if gen > maxRebuilds {
			return nil, fmt.Errorf("sgd: elastic run did not stabilise after %d rebuilds", maxRebuilds)
		}
		res.Rebuilds++
		p := len(active)
		sessions, err := be.setup(active, gen)
		if err == nil {
			err = eachSlot(p, func(slot int) error {
				for _, init := range elasticInit(cfg, gx, gy, p, slot, elasticPre(gen, slot), ckptW) {
					if aerr := be.assign(active, slot, init.Name, init.Val); aerr != nil {
						return aerr
					}
				}
				return nil
			})
		}
		if err != nil {
			if ferr := shrink(gen, err); ferr != nil {
				return nil, ferr
			}
			continue
		}
		opts.logf("sgd: elastic: generation %d over tasks %v from step %d", gen, active, ckptStep)

		// First slot to fail poisons the whole group right away, so peers
		// blocked mid-collective cascade instead of waiting out the receive
		// timeout (same contract as runReplicas).
		var abortOnce sync.Once
		failFast := func() { abortOnce.Do(func() { be.abort(gen) }) }

		rebuilt := false
		for step := ckptStep; step < cfg.Steps; step++ {
			if ct := opts.Plan.CrashTaskAt(step); ct != simnet.NoRank && !killed[ct] {
				killed[ct] = true
				be.kill(ct)
			}
			if opts.StepDelay > 0 {
				time.Sleep(opts.StepDelay)
			}
			losses := make([]float64, p)
			err := eachSlot(p, func(slot int) error {
				out, rerr := sessions[slot].Run(feeds, []string{"loss"}, targets)
				if rerr != nil {
					failFast()
					return rerr
				}
				losses[slot] = out[0].ScalarFloat()
				return nil
			})
			if err != nil {
				if ferr := shrink(gen, err); ferr != nil {
					return nil, ferr
				}
				rebuilt = true
				break
			}
			if step == 0 && !firstSeen {
				firstSeen = true
				firstLoss = losses[0]
			}
			lastLoss = losses[0]

			done := step + 1
			if done%opts.ckptEvery() != 0 && done != cfg.Steps {
				continue
			}
			// Checkpoint boundary: barrier so every rank has applied the
			// step's update, then snapshot rank 0's weights.
			err = eachSlot(p, func(slot int) error {
				_, berr := sessions[slot].Run(nil, nil, []string{"ckpt_barrier"})
				if berr != nil {
					failFast()
				}
				return berr
			})
			var w *tensor.Tensor
			if err == nil {
				w, err = concatWeightsPre(cfg, func(name string) (*tensor.Tensor, error) {
					return be.read(active, 0, name)
				}, elasticPre(gen, 0))
			}
			if err != nil {
				if ferr := shrink(gen, err); ferr != nil {
					return nil, ferr
				}
				rebuilt = true
				break
			}
			ckptW, ckptStep = w, done
			if err := saveCkpt(); err != nil {
				return nil, err
			}

			// Grow-back: fold returned tasks in at the boundary.
			if len(active) < cfg.Workers && done < cfg.Steps {
				var back []int
				for t := 0; t < cfg.Workers; t++ {
					if !contains(active, t) && be.announced(t) {
						back = append(back, t)
					}
				}
				if len(back) > 0 {
					res.Grows++
					active = mergeSorted(active, back)
					opts.logf("sgd: elastic: grow back to %d tasks (%v rejoined) at step %d", len(active), back, done)
					rebuilt = true
					break
				}
			}
		}
		if !rebuilt && ckptStep < cfg.Steps {
			// The step loop ended without a rebuild request but short of the
			// step target — can only mean cfg.Steps isn't a boundary, which
			// the boundary condition above rules out.
			return nil, fmt.Errorf("sgd: elastic loop stalled at step %d", ckptStep)
		}
		if ckptStep == cfg.Steps {
			// Training finished: verify the replica invariant on the final
			// membership before tearing it down.
			weights := make([]*tensor.Tensor, p)
			err := eachSlot(p, func(slot int) error {
				w, rerr := concatWeightsPre(cfg, func(name string) (*tensor.Tensor, error) {
					return be.read(active, slot, name)
				}, elasticPre(gen, slot))
				weights[slot] = w
				return rerr
			})
			if err != nil {
				return nil, err
			}
			equal := true
			for s := 1; s < p; s++ {
				if !weights[s].Equal(weights[0]) {
					equal = false
				}
			}
			elapsed := time.Since(start).Seconds()
			res.Result = Result{
				InitialLoss:   firstLoss,
				FinalLoss:     lastLoss,
				WeightErr:     relWeightErr(weights[0], TrueWeights(cfg)),
				Steps:         cfg.Steps,
				Seconds:       elapsed,
				StepSeconds:   elapsed / float64(cfg.Steps),
				GradBytes:     int64(cfg.Features) * 8,
				ReplicasEqual: equal,
				Weights:       weights[0],
			}
			res.FinalWorkers = p
			return res, nil
		}
	}
	return nil, fmt.Errorf("sgd: elastic loop exited without a result")
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// mergeSorted merges two ascending task lists (rank order must be stable so
// every task derives the same slot assignment).
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
