// Package sgd is the paper's Horovod scenario as a workload: data-parallel
// synchronous SGD on a synthetic linear model. Every worker owns a shard of
// the data and a full replica of the weights; each step computes a local
// gradient, allreduces it over the ring collectives (the decentralised
// alternative to a parameter server), and applies the identical averaged
// update — so replicas stay bit-for-bit equal without ever being exchanged.
package sgd

import (
	"fmt"
	"math"

	"tfhpc/internal/collective"
	"tfhpc/internal/graph"
	"tfhpc/internal/tensor"
)

// Config describes one training setup.
type Config struct {
	Features      int // model dimension d
	RowsPerWorker int // samples per shard
	Workers       int // data-parallel replicas
	Steps         int // full-batch gradient steps
	LR            float64
	Seed          uint64
	// Noise is the observation-noise amplitude of the synthetic labels.
	Noise float64
	// ParamTensors splits the weight vector into this many parameter
	// tensors (0/1 = one tensor, the classic graph). Multi-tensor mode is
	// the Horovod shape — one gradient allreduce per parameter tensor, all
	// dispatched concurrently by the executor — and switches the loss
	// reduction to the double-buffered async handles, so step k's loss
	// collective overlaps step k's update and step k+1's forward pass.
	ParamTensors int
	// Fuse routes the per-tensor gradient allreduces through the group's
	// fusion buffer: the ParamTensors concurrent posts coalesce into one
	// collective pass per step. Results are bit-identical to the unfused
	// path (both ride the same recursive-doubling tree below the picker
	// threshold) — scripts/ci_smoke.sh asserts exactly that on final
	// weights.
	Fuse bool
}

// Validate checks the setup.
func (c Config) Validate() error {
	if c.Features <= 0 || c.RowsPerWorker <= 0 || c.Workers <= 0 {
		return fmt.Errorf("sgd: need positive features, rows and workers")
	}
	if c.Steps <= 0 {
		return fmt.Errorf("sgd: need a positive step count")
	}
	if c.LR <= 0 {
		return fmt.Errorf("sgd: need a positive learning rate")
	}
	if c.ParamTensors < 0 || c.ParamTensors > c.Features {
		return fmt.Errorf("sgd: param tensors %d outside [0, %d]", c.ParamTensors, c.Features)
	}
	return nil
}

// paramTensors normalises ParamTensors (0 means one tensor).
func (c Config) paramTensors() int {
	if c.ParamTensors <= 0 {
		return 1
	}
	return c.ParamTensors
}

// multiTensor reports whether the multi-tensor graph (and its async loss
// double-buffering) is in effect.
func (c Config) multiTensor() bool { return c.paramTensors() > 1 }

// chunkBounds splits d weights into T near-equal parameter tensors using
// the collective engine's segment layout (first d%T tensors one element
// larger), so the weight split mirrors how the engine itself shards.
func chunkBounds(d, T, t int) (lo, hi int) {
	return collective.SegBounds(d, T, t)
}

// TotalRows is the full dataset size across shards.
func (c Config) TotalRows() int { return c.Workers * c.RowsPerWorker }

// TrueWeights returns the generating model w* (deterministic in the seed).
func TrueWeights(cfg Config) *tensor.Tensor {
	r := tensor.NewRNG(cfg.Seed*2 + 1)
	w := make([]float64, cfg.Features)
	for i := range w {
		w[i] = r.Float64()*2 - 1
	}
	return tensor.FromF64(tensor.Shape{cfg.Features}, w)
}

// Shard generates worker w's data: X uniform in [-1,1), y = X·w* + noise.
func Shard(cfg Config, w int) (x, y *tensor.Tensor) {
	wStar := TrueWeights(cfg).F64()
	r := tensor.NewRNG(cfg.Seed + uint64(w)*7919 + 17)
	m, d := cfg.RowsPerWorker, cfg.Features
	xv := make([]float64, m*d)
	yv := make([]float64, m)
	for i := 0; i < m; i++ {
		dot := 0.0
		for j := 0; j < d; j++ {
			v := r.Float64()*2 - 1
			xv[i*d+j] = v
			dot += v * wStar[j]
		}
		yv[i] = dot + cfg.Noise*r.NormFloat64()
	}
	return tensor.FromF64(tensor.Shape{m, d}, xv),
		tensor.FromF64(tensor.Shape{m}, yv)
}

// buildWorker constructs worker w's training graph. Per step:
//
//	resid  = X·w − y                     (local)
//	g_sum  = allreduce( Xᵀ·resid )       (ring/doubling, the Horovod step)
//	loss   = allreduce( resid·resid )/M  (ordered after g_sum)
//	w     −= lr · (2/M) · g_sum          (identical on every replica)
//
// The two allreduces share the group, so a control edge fixes their issue
// order — the executor would otherwise race them and ranks could disagree.
// group names the collective membership; device places the nodes (cluster).
//
// In multi-tensor mode (ParamTensors > 1) the weight vector splits into T
// parameter tensors with one gradient allreduce each — plain AllReduce
// nodes, or AllReduceFused when cfg.Fuse routes them through the fusion
// buffer so the executor's concurrent dispatch coalesces them into one
// pass. The per-tensor chains are independent, so tensor t's weight update
// overlaps tensor u's reduction, and the loss moves to double-buffered
// AllReduceStart/AllReduceJoin handles (even/odd), letting step k's loss
// collective overlap step k's update and step k+1's forward pass; the
// driver fetches each loss one step late and drains the last after the
// loop.
func buildWorker(cfg Config, w int, group, device string) *graph.Graph {
	return buildWorkerPre(cfg, fmt.Sprintf("w%d/", w), group, device)
}

// buildWorkerPre is buildWorker with an explicit variable-name prefix. The
// elastic runner uses generation-qualified prefixes (g<gen>/w<slot>/) so a
// task that hosts different shard sizes across memberships never collides
// with its own earlier variables.
//
// Every graph also carries a "ckpt_barrier" node — a scalar allreduce the
// driver targets in its own Run to bracket checkpoints: when it completes on
// rank 0, every rank has finished the step, so the weights read for the
// checkpoint are the group-wide consistent state. Unfetched it is pruned.
func buildWorkerPre(cfg Config, pre, group, device string) *graph.Graph {
	g := graph.New()
	build := func() {
		g.AddNamedOp("ckpt_barrier", "AllReduce",
			graph.Attrs{"group": group, "key": "ckpt_barrier"},
			g.Const(tensor.ScalarF64(1)))
		if cfg.multiTensor() {
			buildMultiTensor(cfg, g, pre, group)
			return
		}
		lrPH := g.Placeholder("lr", tensor.Float64, nil)
		xVar := g.AddNamedOp("X", "Variable", graph.Attrs{"var_name": pre + "X"})
		xtVar := g.AddNamedOp("Xt", "Variable", graph.Attrs{"var_name": pre + "Xt"})
		yVar := g.AddNamedOp("y", "Variable", graph.Attrs{"var_name": pre + "y"})
		wVar := g.AddNamedOp("w", "Variable", graph.Attrs{"var_name": pre + "w"})

		var pred *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			pred = g.AddNamedOp("pred", "MatVec", nil, xVar, wVar)
		})
		resid := g.AddNamedOp("resid", "Sub", nil, pred, yVar)
		var gLocal *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			gLocal = g.AddNamedOp("g_local", "MatVec", nil, xtVar, resid)
		})
		gradOp := "AllReduce"
		if cfg.Fuse {
			gradOp = "AllReduceFused"
		}
		gSum := g.AddNamedOp("g_sum", gradOp, graph.Attrs{"group": group, "key": "g_sum"}, gLocal)

		partialLoss := g.AddNamedOp("partial_loss", "Dot", nil, resid, resid)
		lossSum := g.AddNamedOp("loss_sum", "AllReduce",
			graph.Attrs{"group": group, "key": "loss_sum"}, partialLoss)
		lossSum.AddControlDep(gSum)
		invM := g.Const(tensor.ScalarF64(1.0 / float64(cfg.TotalRows())))
		g.AddNamedOp("loss", "Scale", nil, invM, lossSum)

		gradScale := g.Const(tensor.ScalarF64(2.0 / float64(cfg.TotalRows())))
		gAvg := g.AddNamedOp("g_avg", "Scale", nil, gradScale, gSum)
		negLR := g.AddNamedOp("neg_lr", "Neg", nil, lrPH)
		wNew := g.AddNamedOp("w_new", "Axpy", nil, negLR, gAvg, wVar)
		g.AddNamedOp("save_w", "Assign", graph.Attrs{"var_name": pre + "w"}, wNew)
	}
	if device != "" {
		g.WithDevice(device, build)
	} else {
		build()
	}
	return g
}

// buildMultiTensor emits the per-parameter-tensor graph described on
// buildWorker.
func buildMultiTensor(cfg Config, g *graph.Graph, pre, group string) {
	T := cfg.paramTensors()
	lrPH := g.Placeholder("lr", tensor.Float64, nil)
	xVar := g.AddNamedOp("X", "Variable", graph.Attrs{"var_name": pre + "X"})
	yVar := g.AddNamedOp("y", "Variable", graph.Attrs{"var_name": pre + "y"})
	wVars := make([]*graph.Node, T)
	xtVars := make([]*graph.Node, T)
	for t := 0; t < T; t++ {
		wVars[t] = g.AddNamedOp(fmt.Sprintf("w%d", t), "Variable",
			graph.Attrs{"var_name": weightVarName(pre, t)})
		xtVars[t] = g.AddNamedOp(fmt.Sprintf("Xt%d", t), "Variable",
			graph.Attrs{"var_name": fmt.Sprintf("%sXt%d", pre, t)})
	}
	wFull := g.AddNamedOp("w_full", "ConcatRows", nil, wVars...)

	var pred *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		pred = g.AddNamedOp("pred", "MatVec", nil, xVar, wFull)
	})
	resid := g.AddNamedOp("resid", "Sub", nil, pred, yVar)

	gradOp := "AllReduce"
	if cfg.Fuse {
		gradOp = "AllReduceFused"
	}
	gradScale := g.Const(tensor.ScalarF64(2.0 / float64(cfg.TotalRows())))
	negLR := g.AddNamedOp("neg_lr", "Neg", nil, lrPH)
	gSums := make([]*graph.Node, T)
	for t := 0; t < T; t++ {
		var gLocal *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			gLocal = g.AddNamedOp(fmt.Sprintf("g_local%d", t), "MatVec", nil, xtVars[t], resid)
		})
		gSum := g.AddNamedOp(fmt.Sprintf("g_sum%d", t), gradOp,
			graph.Attrs{"group": group, "key": fmt.Sprintf("g_sum%d", t)}, gLocal)
		gSums[t] = gSum
		gAvg := g.AddNamedOp(fmt.Sprintf("g_avg%d", t), "Scale", nil, gradScale, gSum)
		wNew := g.AddNamedOp(fmt.Sprintf("w_new%d", t), "Axpy", nil, negLR, gAvg, wVars[t])
		g.AddNamedOp(saveTarget(t), "Assign", graph.Attrs{"var_name": weightVarName(pre, t)}, wNew)
	}

	// Double-buffered async loss: even/odd handles alternate across steps,
	// so the join of step k−1 and the start of step k touch different
	// in-flight collectives within one Run.
	partialLoss := g.AddNamedOp("partial_loss", "Dot", nil, resid, resid)
	invM := g.Const(tensor.ScalarF64(1.0 / float64(cfg.TotalRows())))

	// Synchronous loss alongside the async pair, for drivers that cannot
	// carry an in-flight handle across a membership change (the elastic
	// runner): same reduction, ordered after every gradient allreduce, pruned
	// when unfetched.
	lossSync := g.AddNamedOp("loss_sum", "AllReduce",
		graph.Attrs{"group": group, "key": "loss_sum"}, partialLoss)
	for _, gSum := range gSums {
		lossSync.AddControlDep(gSum)
	}
	g.AddNamedOp("loss", "Scale", nil, invM, lossSync)

	for _, par := range []string{"even", "odd"} {
		g.AddNamedOp("loss_start_"+par, "AllReduceStart",
			graph.Attrs{"group": group, "key": "loss_" + par, "handle": "loss_" + par}, partialLoss)
		join := g.AddNamedOp("loss_join_"+par, "AllReduceJoin",
			graph.Attrs{"group": group, "handle": "loss_" + par})
		g.AddNamedOp("loss_"+par, "Scale", nil, invM, join)
	}
}

// weightVarName is parameter tensor t's variable name under worker prefix
// pre (single-tensor mode keeps the historic bare "w").
func weightVarName(pre string, t int) string { return fmt.Sprintf("%sw%d", pre, t) }

// saveTarget names the per-tensor assign node the driver targets each step.
func saveTarget(t int) string { return fmt.Sprintf("save_w%d", t) }

// lossParity returns the even/odd suffix of a step's loss double buffer.
func lossParity(step int) string {
	if step%2 == 0 {
		return "even"
	}
	return "odd"
}

// Result is the outcome of a training run.
type Result struct {
	InitialLoss float64 // mean squared error before the first update
	FinalLoss   float64 // MSE before the last update
	WeightErr   float64 // ‖w − w*‖ / ‖w*‖ after training
	Steps       int
	Seconds     float64
	// StepSeconds is the mean wall time per step.
	StepSeconds float64
	// GradBytes is the per-step allreduce payload per worker.
	GradBytes int64
	// ReplicasEqual reports whether every worker ended with bit-identical
	// weights — the invariant synchronous allreduce SGD must preserve.
	ReplicasEqual bool
	// Weights is replica 0's final weight vector — the trained model, ready
	// to checkpoint for serving (tfsgd -checkpoint → tfserve).
	Weights *tensor.Tensor
}

// relWeightErr is ‖w − w*‖/‖w*‖.
func relWeightErr(w, wStar *tensor.Tensor) float64 {
	num, den := 0.0, 0.0
	a, b := w.F64(), wStar.F64()
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
