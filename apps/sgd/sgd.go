// Package sgd is the paper's Horovod scenario as a workload: data-parallel
// synchronous SGD on a synthetic linear model. Every worker owns a shard of
// the data and a full replica of the weights; each step computes a local
// gradient, allreduces it over the ring collectives (the decentralised
// alternative to a parameter server), and applies the identical averaged
// update — so replicas stay bit-for-bit equal without ever being exchanged.
package sgd

import (
	"fmt"
	"math"

	"tfhpc/internal/graph"
	"tfhpc/internal/tensor"
)

// Config describes one training setup.
type Config struct {
	Features      int // model dimension d
	RowsPerWorker int // samples per shard
	Workers       int // data-parallel replicas
	Steps         int // full-batch gradient steps
	LR            float64
	Seed          uint64
	// Noise is the observation-noise amplitude of the synthetic labels.
	Noise float64
}

// Validate checks the setup.
func (c Config) Validate() error {
	if c.Features <= 0 || c.RowsPerWorker <= 0 || c.Workers <= 0 {
		return fmt.Errorf("sgd: need positive features, rows and workers")
	}
	if c.Steps <= 0 {
		return fmt.Errorf("sgd: need a positive step count")
	}
	if c.LR <= 0 {
		return fmt.Errorf("sgd: need a positive learning rate")
	}
	return nil
}

// TotalRows is the full dataset size across shards.
func (c Config) TotalRows() int { return c.Workers * c.RowsPerWorker }

// TrueWeights returns the generating model w* (deterministic in the seed).
func TrueWeights(cfg Config) *tensor.Tensor {
	r := tensor.NewRNG(cfg.Seed*2 + 1)
	w := make([]float64, cfg.Features)
	for i := range w {
		w[i] = r.Float64()*2 - 1
	}
	return tensor.FromF64(tensor.Shape{cfg.Features}, w)
}

// Shard generates worker w's data: X uniform in [-1,1), y = X·w* + noise.
func Shard(cfg Config, w int) (x, y *tensor.Tensor) {
	wStar := TrueWeights(cfg).F64()
	r := tensor.NewRNG(cfg.Seed + uint64(w)*7919 + 17)
	m, d := cfg.RowsPerWorker, cfg.Features
	xv := make([]float64, m*d)
	yv := make([]float64, m)
	for i := 0; i < m; i++ {
		dot := 0.0
		for j := 0; j < d; j++ {
			v := r.Float64()*2 - 1
			xv[i*d+j] = v
			dot += v * wStar[j]
		}
		yv[i] = dot + cfg.Noise*r.NormFloat64()
	}
	return tensor.FromF64(tensor.Shape{m, d}, xv),
		tensor.FromF64(tensor.Shape{m}, yv)
}

// buildWorker constructs worker w's training graph. Per step:
//
//	resid  = X·w − y                     (local)
//	g_sum  = allreduce( Xᵀ·resid )       (ring, the Horovod step)
//	loss   = allreduce( resid·resid )/M  (ring, ordered after g_sum)
//	w     −= lr · (2/M) · g_sum          (identical on every replica)
//
// The two allreduces share the group, so a control edge fixes their issue
// order — the executor would otherwise race them and ranks could disagree.
// group names the collective membership; device places the nodes (cluster).
func buildWorker(cfg Config, w int, group, device string) *graph.Graph {
	pre := fmt.Sprintf("w%d/", w)
	g := graph.New()
	build := func() {
		lrPH := g.Placeholder("lr", tensor.Float64, nil)
		xVar := g.AddNamedOp("X", "Variable", graph.Attrs{"var_name": pre + "X"})
		xtVar := g.AddNamedOp("Xt", "Variable", graph.Attrs{"var_name": pre + "Xt"})
		yVar := g.AddNamedOp("y", "Variable", graph.Attrs{"var_name": pre + "y"})
		wVar := g.AddNamedOp("w", "Variable", graph.Attrs{"var_name": pre + "w"})

		var pred *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			pred = g.AddNamedOp("pred", "MatVec", nil, xVar, wVar)
		})
		resid := g.AddNamedOp("resid", "Sub", nil, pred, yVar)
		var gLocal *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			gLocal = g.AddNamedOp("g_local", "MatVec", nil, xtVar, resid)
		})
		gSum := g.AddNamedOp("g_sum", "AllReduce", graph.Attrs{"group": group, "key": "g_sum"}, gLocal)

		partialLoss := g.AddNamedOp("partial_loss", "Dot", nil, resid, resid)
		lossSum := g.AddNamedOp("loss_sum", "AllReduce",
			graph.Attrs{"group": group, "key": "loss_sum"}, partialLoss)
		lossSum.AddControlDep(gSum)
		invM := g.Const(tensor.ScalarF64(1.0 / float64(cfg.TotalRows())))
		g.AddNamedOp("loss", "Scale", nil, invM, lossSum)

		gradScale := g.Const(tensor.ScalarF64(2.0 / float64(cfg.TotalRows())))
		gAvg := g.AddNamedOp("g_avg", "Scale", nil, gradScale, gSum)
		negLR := g.AddNamedOp("neg_lr", "Neg", nil, lrPH)
		wNew := g.AddNamedOp("w_new", "Axpy", nil, negLR, gAvg, wVar)
		g.AddNamedOp("save_w", "Assign", graph.Attrs{"var_name": pre + "w"}, wNew)
	}
	if device != "" {
		g.WithDevice(device, build)
	} else {
		build()
	}
	return g
}

// Result is the outcome of a training run.
type Result struct {
	InitialLoss float64 // mean squared error before the first update
	FinalLoss   float64 // MSE before the last update
	WeightErr   float64 // ‖w − w*‖ / ‖w*‖ after training
	Steps       int
	Seconds     float64
	// StepSeconds is the mean wall time per step.
	StepSeconds float64
	// GradBytes is the per-step allreduce payload per worker.
	GradBytes int64
	// ReplicasEqual reports whether every worker ended with bit-identical
	// weights — the invariant synchronous allreduce SGD must preserve.
	ReplicasEqual bool
	// Weights is replica 0's final weight vector — the trained model, ready
	// to checkpoint for serving (tfsgd -checkpoint → tfserve).
	Weights *tensor.Tensor
}

// relWeightErr is ‖w − w*‖/‖w*‖.
func relWeightErr(w, wStar *tensor.Tensor) float64 {
	num, den := 0.0, 0.0
	a, b := w.F64(), wStar.F64()
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
