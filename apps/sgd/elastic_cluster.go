package sgd

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// Cluster elastic deployment: one collective group name ("sgd") across all
// generations, rebuilt by the coordinator with a strictly increasing epoch —
// the transports' epoch fences are what keep a zombie incarnation's traffic
// out of the rebuilt group. Liveness is real (Health RPCs with retry), so a
// kill -9'd task that restarts on its old address is folded back in at the
// next checkpoint boundary without any driver-side simulation.

const elasticClusterGroup = "sgd"

type clusterElastic struct {
	cfg   Config
	copts ClusterOptions
	eopts ElasticOptions
	peers *cluster.Peers
	job   string
	coord *cluster.Coordinator

	mu   sync.Mutex
	down map[int]bool // tasks the driver killed itself (simulated crash)
}

func newClusterElastic(cfg Config, peers *cluster.Peers, copts ClusterOptions, eopts ElasticOptions) *clusterElastic {
	job := copts.Job
	if job == "" {
		job = "worker"
	}
	return &clusterElastic{
		cfg:   cfg,
		copts: copts,
		eopts: eopts,
		peers: peers,
		job:   job,
		coord: cluster.NewCoordinator(peers, job),
		down:  make(map[int]bool),
	}
}

func (b *clusterElastic) setup(active []int, gen int) ([]*session.Session, error) {
	if _, err := b.coord.Init(elasticClusterGroup, active, cluster.CollectiveOptions{
		ChunkBytes: b.copts.ChunkBytes,
		Fusion:     b.cfg.fusionOptions(),
	}); err != nil {
		return nil, err
	}
	sessions := make([]*session.Session, len(active))
	for slot, task := range active {
		g := buildWorkerPre(b.cfg, elasticPre(gen, slot), elasticClusterGroup,
			fmt.Sprintf("/job:%s/task:%d", b.job, task))
		sess, err := session.New(g, nil, session.Options{LocalJob: "client", Remote: b.peers})
		if err != nil {
			return nil, err
		}
		sessions[slot] = sess
	}
	return sessions, nil
}

func (b *clusterElastic) assign(active []int, slot int, name string, val *tensor.Tensor) error {
	dev := graph.DeviceSpec{Job: b.job, Task: active[slot]}
	_, err := b.peers.RunRemoteOp(dev, "Assign", "init/"+name,
		graph.Attrs{"var_name": name}, []string{"value"}, []*tensor.Tensor{val})
	return err
}

func (b *clusterElastic) read(active []int, slot int, name string) (*tensor.Tensor, error) {
	return b.peers.RunRemoteOp(graph.DeviceSpec{Job: b.job, Task: active[slot]},
		"Variable", "read/w", graph.Attrs{"var_name": name}, nil, nil)
}

func (b *clusterElastic) abort(int) { b.coord.Abort(elasticClusterGroup) }

func (b *clusterElastic) probe(task int) error {
	b.mu.Lock()
	if b.down[task] {
		// The driver killed this task itself; don't let the probe's retry
		// window race the (test-orchestrated) restart into a no-op shrink.
		b.mu.Unlock()
		return fmt.Errorf("sgd: task %d was crash-injected", task)
	}
	b.mu.Unlock()
	return b.coord.Probe(task)
}

func (b *clusterElastic) announced(task int) bool {
	if b.coord.ProbeOnce(task) != nil {
		return false
	}
	b.mu.Lock()
	delete(b.down, task)
	b.mu.Unlock()
	return true
}

func (b *clusterElastic) kill(task int) {
	if b.eopts.Kill == nil {
		return // real deployments crash tasks from outside (CI: kill -9)
	}
	b.mu.Lock()
	b.down[task] = true
	b.mu.Unlock()
	b.eopts.Kill(task)
}

func (b *clusterElastic) close() {}

// RunElasticCluster trains elastically over an already-running cluster. The
// task count of the job is the full width; the run starts over every task
// that answers health probes and survives losing all but MinWorkers of them.
func RunElasticCluster(cfg Config, peers *cluster.Peers, copts ClusterOptions, eopts ElasticOptions) (*ElasticResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	job := copts.Job
	if job == "" {
		job = "worker"
	}
	if got := peers.Spec().NumTasks(job); got != cfg.Workers {
		return nil, fmt.Errorf("sgd: %d workers requested but job %q has %d tasks (counts must match)", cfg.Workers, job, got)
	}
	wait := copts.HealthWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	if err := peers.WaitHealthy(job, wait); err != nil {
		return nil, err
	}
	be := newClusterElastic(cfg, peers, copts, eopts)
	return runElastic(cfg, be, eopts)
}
