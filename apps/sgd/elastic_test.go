package sgd

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/cluster"
	"tfhpc/internal/simnet"
)

func elasticConfig(p int) Config {
	return Config{
		Features:      16,
		RowsPerWorker: 24,
		Workers:       p,
		Steps:         18,
		LR:            0.3,
		Seed:          11,
		Noise:         0.01,
	}
}

// crashPlan kills `task` at the start of `step`.
func crashPlan(task, step int) simnet.FaultPlan {
	plan := simnet.NewFaultPlan()
	plan.CrashRank = task
	plan.CrashAtStep = step
	return plan
}

// lossWithin asserts the elastic run's final loss is within rel of the
// uninterrupted baseline — the convergence-equivalence bar from the paper's
// checkpoint-restart pitch.
func lossWithin(t *testing.T, got, baseline, rel float64) {
	t.Helper()
	if baseline == 0 {
		t.Fatal("degenerate baseline loss 0")
	}
	if d := math.Abs(got-baseline) / math.Abs(baseline); d > rel {
		t.Fatalf("final loss %g vs baseline %g: relative diff %g > %g", got, baseline, d, rel)
	}
}

func TestElasticUninterrupted(t *testing.T) {
	cfg := elasticConfig(4)
	res, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds != 1 || res.Shrinks != 0 || res.Grows != 0 || res.Resumes != 0 {
		t.Fatalf("fault-free run had membership churn: %+v", res)
	}
	if res.FinalWorkers != 4 {
		t.Fatalf("final width %d, want 4", res.FinalWorkers)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged")
	}
	if res.FinalLoss >= res.InitialLoss/10 {
		t.Fatalf("loss barely moved: %g -> %g", res.InitialLoss, res.FinalLoss)
	}
}

// TestElasticShrinkResume: kill one rank mid-run at 2..5 ranks; the run must
// shrink, resume from its checkpoint, finish on the survivors, and land
// within tolerance of the uninterrupted run.
func TestElasticShrinkResume(t *testing.T) {
	for p := 2; p <= 5; p++ {
		cfg := elasticConfig(p)
		baseline, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 4})
		if err != nil {
			t.Fatalf("p=%d baseline: %v", p, err)
		}
		res, err := RunElasticReal(cfg, ElasticOptions{
			CkptEvery: 4,
			Plan:      crashPlan(p-1, 7),
			SimRevive: -1, // stays dead: pure shrink
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Shrinks != 1 || res.Grows != 0 {
			t.Fatalf("p=%d: shrinks=%d grows=%d, want 1/0", p, res.Shrinks, res.Grows)
		}
		if res.FinalWorkers != p-1 {
			t.Fatalf("p=%d: finished at width %d, want %d", p, res.FinalWorkers, p-1)
		}
		if res.Resumes < 1 {
			t.Fatalf("p=%d: no checkpoint resume recorded", p)
		}
		if !res.ReplicasEqual {
			t.Fatalf("p=%d: survivors diverged", p)
		}
		lossWithin(t, res.FinalLoss, baseline.FinalLoss, 1e-3)
	}
}

// TestElasticShrinkThenGrow: the killed task answers probes again after one
// boundary, so the run must return to full width and still converge.
func TestElasticShrinkThenGrow(t *testing.T) {
	cfg := elasticConfig(4)
	baseline, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunElasticReal(cfg, ElasticOptions{
		CkptEvery: 3,
		Plan:      crashPlan(2, 5),
		SimRevive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shrinks < 1 {
		t.Fatalf("no shrink recorded: %+v", res)
	}
	if res.Grows < 1 {
		t.Fatalf("task never grew back: %+v", res)
	}
	if res.FinalWorkers != 4 {
		t.Fatalf("final width %d, want full 4", res.FinalWorkers)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged after grow-back")
	}
	lossWithin(t, res.FinalLoss, baseline.FinalLoss, 1e-3)
}

// TestElasticShrinkDuringFusion: the crash lands while the per-step gradient
// allreduces ride the fusion buffer — the rebuild must renegotiate the
// fusion membership for the new width.
func TestElasticShrinkDuringFusion(t *testing.T) {
	cfg := elasticConfig(3)
	cfg.ParamTensors = 4
	cfg.Fuse = true
	baseline, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunElasticReal(cfg, ElasticOptions{
		CkptEvery: 4,
		Plan:      crashPlan(1, 6),
		SimRevive: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shrinks != 1 || res.FinalWorkers != 2 {
		t.Fatalf("shrinks=%d width=%d, want 1/2", res.Shrinks, res.FinalWorkers)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged")
	}
	lossWithin(t, res.FinalLoss, baseline.FinalLoss, 1e-3)
}

// TestElasticMinWorkers: losing a rank with the floor at full width is not
// survivable and must fail, not hang.
func TestElasticMinWorkers(t *testing.T) {
	cfg := elasticConfig(2)
	_, err := RunElasticReal(cfg, ElasticOptions{
		CkptEvery:  4,
		MinWorkers: 2,
		Plan:       crashPlan(1, 3),
		SimRevive:  -1,
	})
	if err == nil {
		t.Fatal("run below MinWorkers should fail")
	}
}

// TestElasticCheckpointFile: the on-disk checkpoint is the real resume
// source and must end at the final step with the final weights.
func TestElasticCheckpointFile(t *testing.T) {
	cfg := elasticConfig(3)
	path := filepath.Join(t.TempDir(), "elastic.ckpt")
	res, err := RunElasticReal(cfg, ElasticOptions{
		CkptPath:  path,
		CkptEvery: 4,
		Plan:      crashPlan(1, 5),
		SimRevive: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumes < 1 {
		t.Fatal("no resume recorded — the crash path never exercised the file")
	}
	ck, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.GraphID != elasticGraphID(cfg) {
		t.Fatalf("graph id %q", ck.GraphID)
	}
	if int(ck.Step) != cfg.Steps {
		t.Fatalf("checkpoint step %d, want %d", ck.Step, cfg.Steps)
	}
	if !ck.Vars["w"].Equal(res.Weights) {
		t.Fatal("checkpointed weights differ from the run's final weights")
	}
}

// TestElasticClusterShrinkGrow is the end-to-end shape over real task
// servers and TCP: kill a server mid-run, restart it on its old address, and
// require shrink → resume → grow with convergence within tolerance —
// exactly what ci_smoke.sh asserts across real processes.
func TestElasticClusterShrinkGrow(t *testing.T) {
	cfg := elasticConfig(4)
	cfg.Steps = 21
	const job = "worker"
	lc, err := cluster.StartLocal(map[string]int{job: cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	baseline, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 3})
	if err != nil {
		t.Fatal(err)
	}

	const victim = 2
	addr := lc.Spec()[job][victim]
	var restarted *cluster.Server
	defer func() {
		if restarted != nil {
			restarted.Close()
		}
	}()
	res, err := RunElasticCluster(cfg, peers, ClusterOptions{HealthWait: 5 * time.Second}, ElasticOptions{
		CkptPath:  filepath.Join(t.TempDir(), "cluster.ckpt"),
		CkptEvery: 3,
		// Pace the steps so the restarted server is back before the run
		// ends: the grow probe must find it at a later boundary.
		StepDelay: 25 * time.Millisecond,
		Plan:      crashPlan(victim, 7),
		Kill: func(task int) {
			lc.Server(job, task).Close()
			go func() {
				time.Sleep(150 * time.Millisecond)
				srv := cluster.NewServer(job, task)
				if _, err := srv.Start(addr); err == nil {
					restarted = srv
				}
			}()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shrinks < 1 {
		t.Fatalf("no shrink: %+v", res)
	}
	if res.Grows < 1 {
		t.Fatalf("restarted task never rejoined: %+v", res)
	}
	if res.FinalWorkers != cfg.Workers {
		t.Fatalf("final width %d, want %d", res.FinalWorkers, cfg.Workers)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged")
	}
	lossWithin(t, res.FinalLoss, baseline.FinalLoss, 1e-3)
}

// TestElasticClusterPureShrink: 2..3 ranks over TCP, victim never returns.
func TestElasticClusterPureShrink(t *testing.T) {
	for p := 2; p <= 3; p++ {
		cfg := elasticConfig(p)
		const job = "worker"
		lc, err := cluster.StartLocal(map[string]int{job: cfg.Workers})
		if err != nil {
			t.Fatal(err)
		}
		peers := cluster.NewPeers(lc.Spec())

		baseline, err := RunElasticReal(cfg, ElasticOptions{CkptEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunElasticCluster(cfg, peers, ClusterOptions{HealthWait: 5 * time.Second}, ElasticOptions{
			CkptEvery: 4,
			Plan:      crashPlan(p-1, 6),
			Kill:      func(task int) { lc.Server(job, task).Close() },
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Shrinks != 1 || res.FinalWorkers != p-1 {
			t.Fatalf("p=%d: shrinks=%d width=%d, want 1/%d", p, res.Shrinks, res.FinalWorkers, p-1)
		}
		if !res.ReplicasEqual {
			t.Fatalf("p=%d: survivors diverged", p)
		}
		lossWithin(t, res.FinalLoss, baseline.FinalLoss, 1e-3)
		peers.Close()
		lc.Close()
	}
}
