package sgd

import (
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

func baseConfig() Config {
	return Config{
		Features:      32,
		RowsPerWorker: 128,
		Workers:       4,
		Steps:         80,
		LR:            0.4,
		Seed:          5,
		Noise:         0.01,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Features = 0 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.LR = 0 },
	} {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%+v should be invalid", c)
		}
	}
}

func TestTrainsAndReplicasStayIdentical(t *testing.T) {
	res, err := RunReal(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged — synchronous allreduce must keep them bit-identical")
	}
	if res.FinalLoss >= res.InitialLoss/10 {
		t.Fatalf("loss barely moved: %g -> %g", res.InitialLoss, res.FinalLoss)
	}
	if res.WeightErr > 0.15 {
		t.Fatalf("weight error %g, want near the noise floor", res.WeightErr)
	}
}

// TestWorkerCountsAgree: with the same total dataset, the full-batch
// gradient is a sum over all rows — the decomposition must not change the
// trajectory beyond roundoff.
func TestWorkerCountsAgree(t *testing.T) {
	// Same shards, regrouped: 4 workers of 64 rows vs 2 workers of 128 rows
	// would shuffle the generator streams, so instead compare 1 worker vs 4
	// on identical total data by verifying both converge to w*.
	cfg1 := baseConfig()
	cfg1.Workers = 1
	cfg1.Noise = 0
	cfg1.Steps = 250
	cfg4 := baseConfig()
	cfg4.Noise = 0
	cfg4.Steps = 250
	r1, err := RunReal(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReal(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WeightErr > 1e-3 || r4.WeightErr > 1e-3 {
		t.Fatalf("noise-free runs should recover w*: err1=%g err4=%g", r1.WeightErr, r4.WeightErr)
	}
}

// TestMultiTensorMatchesSingle: splitting the weights into parameter
// tensors changes the graph shape, not the math — same data, same updates,
// so the trajectory and final weights must agree with the single-tensor
// run to the last bit when both allreduce paths pick the same algorithm
// (they do: these gradients sit below the doubling threshold).
func TestMultiTensorMatchesSingle(t *testing.T) {
	single := baseConfig()
	single.Steps = 25
	multi := single
	multi.ParamTensors = 5 // uneven 32/5 split exercises ragged chunks
	rs, err := RunReal(single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := RunReal(multi)
	if err != nil {
		t.Fatal(err)
	}
	if !rm.ReplicasEqual {
		t.Fatal("multi-tensor replicas diverged")
	}
	if !rm.Weights.Equal(rs.Weights) {
		t.Fatal("multi-tensor weights differ from single-tensor weights")
	}
	if diff := rm.FinalLoss - rs.FinalLoss; diff != 0 {
		t.Fatalf("multi-tensor loss %g != single-tensor loss %g", rm.FinalLoss, rs.FinalLoss)
	}
}

// TestFusedMatchesUnfusedBitwise is the in-process form of the CI smoke
// assertion: routing the per-tensor gradients through the fusion buffer
// must leave the final weights bit-identical to the unfused multi-tensor
// run — the fused pass reduces the packed payload through the same
// doubling tree.
func TestFusedMatchesUnfusedBitwise(t *testing.T) {
	unfused := baseConfig()
	unfused.Steps = 25
	unfused.ParamTensors = 4
	fused := unfused
	fused.Fuse = true
	ru, err := RunReal(unfused)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunReal(fused)
	if err != nil {
		t.Fatal(err)
	}
	if !rf.ReplicasEqual {
		t.Fatal("fused replicas diverged")
	}
	if !rf.Weights.Equal(ru.Weights) {
		t.Fatal("fused weights not bit-identical to unfused weights")
	}
	if rf.FinalLoss != ru.FinalLoss {
		t.Fatalf("fused loss %g != unfused loss %g", rf.FinalLoss, ru.FinalLoss)
	}
}

func TestClusterTrainingMatchesInProcess(t *testing.T) {
	cfg := baseConfig()
	cfg.Steps = 15
	lc, err := cluster.StartLocal(map[string]int{"worker": cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	dist, err := RunCluster(cfg, peers, ClusterOptions{HealthWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ReplicasEqual {
		t.Fatal("cluster replicas diverged")
	}
	// Same data, same updates: the loss trajectories must agree exactly
	// modulo the transport (which moves identical bytes).
	if diff := dist.FinalLoss - local.FinalLoss; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cluster loss %g != in-process loss %g", dist.FinalLoss, local.FinalLoss)
	}
}

// TestClusterFusedMultiTensor drives the fused multi-tensor graph over real
// task servers: AllReduceFused ops coalesce on each server's fusion buffer,
// the async loss handles span RunRemoteOp calls, and the result must match
// the in-process fused run bit-for-bit.
func TestClusterFusedMultiTensor(t *testing.T) {
	cfg := baseConfig()
	cfg.Steps = 10
	cfg.ParamTensors = 3
	cfg.Fuse = true
	lc, err := cluster.StartLocal(map[string]int{"worker": cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	dist, err := RunCluster(cfg, peers, ClusterOptions{HealthWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ReplicasEqual {
		t.Fatal("fused cluster replicas diverged")
	}
	if !dist.Weights.Equal(local.Weights) {
		t.Fatal("fused cluster weights differ from in-process fused weights")
	}
}

func TestSimRingBeatsNaive(t *testing.T) {
	cfg := SimConfig{
		Cluster:  hw.Kebnekaise,
		NodeType: hw.Kebnekaise.NodeTypes["v100"],
		Protocol: simnet.RDMA,
		Config:   Config{Features: 1 << 20, RowsPerWorker: 4096, Workers: 8, Steps: 10, LR: 0.1, Seed: 1},
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RingSpeedup <= 1.5 {
		t.Fatalf("ring speedup %.2f over gather-to-root at p=8, want > 1.5", res.RingSpeedup)
	}
	// Scaling: doubling workers must not double ring time (it is ~constant),
	// while the naive path grows linearly.
	cfg16 := cfg
	cfg16.Workers = 16
	res16, err := RunSim(cfg16)
	if err != nil {
		t.Fatal(err)
	}
	if res16.RingSeconds > 1.6*res.RingSeconds {
		t.Fatalf("ring time grew %gx from 8 to 16 workers, want ~constant",
			res16.RingSeconds/res.RingSeconds)
	}
	if res16.NaiveSeconds < 1.7*res.NaiveSeconds {
		t.Fatalf("naive time grew only %gx from 8 to 16 workers, want ~2x",
			res16.NaiveSeconds/res.NaiveSeconds)
	}
}
