package sgd

import (
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/hw"
	"tfhpc/internal/simnet"
)

func baseConfig() Config {
	return Config{
		Features:      32,
		RowsPerWorker: 128,
		Workers:       4,
		Steps:         80,
		LR:            0.4,
		Seed:          5,
		Noise:         0.01,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Features = 0 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.LR = 0 },
	} {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("%+v should be invalid", c)
		}
	}
}

func TestTrainsAndReplicasStayIdentical(t *testing.T) {
	res, err := RunReal(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReplicasEqual {
		t.Fatal("replicas diverged — synchronous allreduce must keep them bit-identical")
	}
	if res.FinalLoss >= res.InitialLoss/10 {
		t.Fatalf("loss barely moved: %g -> %g", res.InitialLoss, res.FinalLoss)
	}
	if res.WeightErr > 0.15 {
		t.Fatalf("weight error %g, want near the noise floor", res.WeightErr)
	}
}

// TestWorkerCountsAgree: with the same total dataset, the full-batch
// gradient is a sum over all rows — the decomposition must not change the
// trajectory beyond roundoff.
func TestWorkerCountsAgree(t *testing.T) {
	// Same shards, regrouped: 4 workers of 64 rows vs 2 workers of 128 rows
	// would shuffle the generator streams, so instead compare 1 worker vs 4
	// on identical total data by verifying both converge to w*.
	cfg1 := baseConfig()
	cfg1.Workers = 1
	cfg1.Noise = 0
	cfg1.Steps = 250
	cfg4 := baseConfig()
	cfg4.Noise = 0
	cfg4.Steps = 250
	r1, err := RunReal(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReal(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.WeightErr > 1e-3 || r4.WeightErr > 1e-3 {
		t.Fatalf("noise-free runs should recover w*: err1=%g err4=%g", r1.WeightErr, r4.WeightErr)
	}
}

func TestClusterTrainingMatchesInProcess(t *testing.T) {
	cfg := baseConfig()
	cfg.Steps = 15
	lc, err := cluster.StartLocal(map[string]int{"worker": cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	dist, err := RunCluster(cfg, peers, ClusterOptions{HealthWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.ReplicasEqual {
		t.Fatal("cluster replicas diverged")
	}
	// Same data, same updates: the loss trajectories must agree exactly
	// modulo the transport (which moves identical bytes).
	if diff := dist.FinalLoss - local.FinalLoss; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("cluster loss %g != in-process loss %g", dist.FinalLoss, local.FinalLoss)
	}
}

func TestSimRingBeatsNaive(t *testing.T) {
	cfg := SimConfig{
		Cluster:  hw.Kebnekaise,
		NodeType: hw.Kebnekaise.NodeTypes["v100"],
		Protocol: simnet.RDMA,
		Config:   Config{Features: 1 << 20, RowsPerWorker: 4096, Workers: 8, Steps: 10, LR: 0.1, Seed: 1},
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RingSpeedup <= 1.5 {
		t.Fatalf("ring speedup %.2f over gather-to-root at p=8, want > 1.5", res.RingSpeedup)
	}
	// Scaling: doubling workers must not double ring time (it is ~constant),
	// while the naive path grows linearly.
	cfg16 := cfg
	cfg16.Workers = 16
	res16, err := RunSim(cfg16)
	if err != nil {
		t.Fatal(err)
	}
	if res16.RingSeconds > 1.6*res.RingSeconds {
		t.Fatalf("ring time grew %gx from 8 to 16 workers, want ~constant",
			res16.RingSeconds/res.RingSeconds)
	}
	if res16.NaiveSeconds < 1.7*res.NaiveSeconds {
		t.Fatalf("naive time grew only %gx from 8 to 16 workers, want ~2x",
			res16.NaiveSeconds/res.NaiveSeconds)
	}
}
