package sgd

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/gemm"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// collGroup names worker w's ring membership in the shared in-process store.
func collGroup(w int) string { return fmt.Sprintf("sgd/w%d", w) }

// shardTensors materialises worker w's variables: the shard, its transpose
// (packed once, so the gradient matvec streams rows), labels, and w = 0.
func shardTensors(cfg Config, w int) (x, xt, y, w0 *tensor.Tensor) {
	x, y = Shard(cfg, w)
	m, d := cfg.RowsPerWorker, cfg.Features
	xtv := make([]float64, d*m)
	gemm.Transpose64(m, d, x.F64(), xtv)
	xt = tensor.FromF64(tensor.Shape{d, m}, xtv)
	w0 = tensor.New(tensor.Float64, d)
	return
}

// workerInit lists worker w's (variable name, value) pairs for either graph
// shape: the multi-tensor graph splits Xt and w into per-parameter-tensor
// chunks (rows of Xt align with weight indices, so chunk t of Xt feeds
// gradient tensor t).
func workerInit(cfg Config, w int) []struct {
	Name string
	Val  *tensor.Tensor
} {
	type nv = struct {
		Name string
		Val  *tensor.Tensor
	}
	pre := fmt.Sprintf("w%d/", w)
	x, xt, y, w0 := shardTensors(cfg, w)
	if !cfg.multiTensor() {
		return []nv{{pre + "X", x}, {pre + "Xt", xt}, {pre + "y", y}, {pre + "w", w0}}
	}
	T := cfg.paramTensors()
	m, d := cfg.RowsPerWorker, cfg.Features
	out := []nv{{pre + "X", x}, {pre + "y", y}}
	xtv := xt.F64()
	for t := 0; t < T; t++ {
		lo, hi := chunkBounds(d, T, t)
		out = append(out,
			nv{fmt.Sprintf("%sXt%d", pre, t), tensor.FromF64(tensor.Shape{hi - lo, m}, xtv[lo*m:hi*m])},
			nv{weightVarName(pre, t), tensor.New(tensor.Float64, hi-lo)})
	}
	return out
}

// fusionOptions returns the collective fusion tuning of one run: a count
// trigger equal to the per-step post set, so a step's gradients flush as
// one pass the moment the last one lands, with the deadline as fallback.
func (c Config) fusionOptions() collective.FusionOptions {
	if !c.Fuse {
		return collective.FusionOptions{}
	}
	return collective.FusionOptions{FlushTensors: c.paramTensors()}
}

// concatWeights reassembles the flat weight vector from per-tensor reads.
func concatWeights(cfg Config, read func(name string) (*tensor.Tensor, error), w int) (*tensor.Tensor, error) {
	return concatWeightsPre(cfg, read, fmt.Sprintf("w%d/", w))
}

// concatWeightsPre is concatWeights under an explicit variable prefix.
func concatWeightsPre(cfg Config, read func(name string) (*tensor.Tensor, error), pre string) (*tensor.Tensor, error) {
	if !cfg.multiTensor() {
		return read(pre + "w")
	}
	out := tensor.New(tensor.Float64, cfg.Features)
	dst := out.F64()
	off := 0
	for t := 0; t < cfg.paramTensors(); t++ {
		chunk, err := read(weightVarName(pre, t))
		if err != nil {
			return nil, err
		}
		copy(dst[off:off+chunk.NumElements()], chunk.F64())
		off += chunk.NumElements()
	}
	return out, nil
}

// driveWorker runs one replica's training loop: per step one session Run
// fetching the allreduced loss and applying the identical weight update.
//
// Multi-tensor mode pipelines the loss: step k's Run only *starts* the loss
// allreduce (async handle, parity-alternating), and step k+1's Run joins it
// — so the loss collective for step k is on the wire while step k's weight
// assigns and step k+1's forward pass execute. A drain Run after the loop
// joins the final step's loss.
func driveWorker(cfg Config, sess *session.Session) (first, last float64, err error) {
	lr := tensor.ScalarF64(cfg.LR)
	feeds := map[string]*tensor.Tensor{"lr": lr}
	if !cfg.multiTensor() {
		for step := 0; step < cfg.Steps; step++ {
			out, err := sess.Run(feeds, []string{"loss"}, []string{"save_w"})
			if err != nil {
				return 0, 0, err
			}
			loss := out[0].ScalarFloat()
			if step == 0 {
				first = loss
			}
			last = loss
		}
		return first, last, nil
	}

	targetsBase := make([]string, cfg.paramTensors())
	for t := range targetsBase {
		targetsBase[t] = saveTarget(t)
	}
	record := func(step int, loss float64) {
		if step == 0 {
			first = loss
		}
		last = loss
	}
	for step := 0; step < cfg.Steps; step++ {
		targets := append(append([]string{}, targetsBase...), "loss_start_"+lossParity(step))
		var fetches []string
		if step > 0 {
			fetches = []string{"loss_" + lossParity(step-1)}
		}
		out, err := sess.Run(feeds, fetches, targets)
		if err != nil {
			return 0, 0, err
		}
		if step > 0 {
			record(step-1, out[0].ScalarFloat())
		}
	}
	out, err := sess.Run(nil, []string{"loss_" + lossParity(cfg.Steps-1)}, nil)
	if err != nil {
		return 0, 0, err
	}
	record(cfg.Steps-1, out[0].ScalarFloat())
	return first, last, nil
}

// RunReal trains in-process: one session and driver goroutine per replica,
// gradients allreduced over a loopback ring fabric.
func RunReal(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := session.NewResources()
	groups := collective.NewLoopbackGroups(cfg.Workers, collective.Options{Fusion: cfg.fusionOptions()})
	for w, grp := range groups {
		res.Colls.Register(collGroup(w), grp)
	}
	defer res.Colls.CloseAll()

	sessions := make([]*session.Session, cfg.Workers)
	for w := range sessions {
		sess, err := session.New(buildWorker(cfg, w, collGroup(w), ""), res, session.Options{})
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}
	for w := 0; w < cfg.Workers; w++ {
		for _, init := range workerInit(cfg, w) {
			res.Vars.Get(init.Name).Assign(init.Val)
		}
	}

	return runReplicas(cfg, sessions,
		func(w int) { groups[w].Close() }, // cascade failure to blocked peers
		func(w int) (*tensor.Tensor, error) {
			return concatWeights(cfg, func(name string) (*tensor.Tensor, error) {
				return res.Vars.Get(name).Read()
			}, w)
		})
}

// runReplicas fans the per-replica training loops out, aggregates their
// outcomes (invoking abort on the first failure so peers blocked in a
// collective cascade instead of hanging), reads every replica's final
// weights back and assembles the Result — including the synchronous
// allreduce invariant that all replicas ended bit-for-bit equal.
func runReplicas(cfg Config, sessions []*session.Session,
	abort func(w int), readWeights func(w int) (*tensor.Tensor, error)) (*Result, error) {
	type out struct {
		first, last float64
		err         error
	}
	start := time.Now()
	outs := make([]out, cfg.Workers)
	var wg sync.WaitGroup
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			first, last, err := driveWorker(cfg, sessions[w])
			outs[w] = out{first, last, err}
			if err != nil {
				abort(w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	weights := make([]*tensor.Tensor, cfg.Workers)
	for w := range weights {
		wt, err := readWeights(w)
		if err != nil {
			return nil, err
		}
		weights[w] = wt
	}
	equal := true
	for w := 1; w < cfg.Workers; w++ {
		if !weights[w].Equal(weights[0]) {
			equal = false
		}
	}
	return &Result{
		InitialLoss:   outs[0].first,
		FinalLoss:     outs[0].last,
		WeightErr:     relWeightErr(weights[0], TrueWeights(cfg)),
		Steps:         cfg.Steps,
		Seconds:       elapsed,
		StepSeconds:   elapsed / float64(cfg.Steps),
		GradBytes:     int64(cfg.Features) * 8,
		ReplicasEqual: equal,
		Weights:       weights[0],
	}, nil
}
