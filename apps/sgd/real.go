package sgd

import (
	"fmt"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/gemm"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// collGroup names worker w's ring membership in the shared in-process store.
func collGroup(w int) string { return fmt.Sprintf("sgd/w%d", w) }

// shardTensors materialises worker w's variables: the shard, its transpose
// (packed once, so the gradient matvec streams rows), labels, and w = 0.
func shardTensors(cfg Config, w int) (x, xt, y, w0 *tensor.Tensor) {
	x, y = Shard(cfg, w)
	m, d := cfg.RowsPerWorker, cfg.Features
	xtv := make([]float64, d*m)
	gemm.Transpose64(m, d, x.F64(), xtv)
	xt = tensor.FromF64(tensor.Shape{d, m}, xtv)
	w0 = tensor.New(tensor.Float64, d)
	return
}

// driveWorker runs one replica's training loop: per step one session Run
// fetching the allreduced loss and applying the identical weight update.
func driveWorker(cfg Config, sess *session.Session) (first, last float64, err error) {
	lr := tensor.ScalarF64(cfg.LR)
	for step := 0; step < cfg.Steps; step++ {
		out, err := sess.Run(map[string]*tensor.Tensor{"lr": lr},
			[]string{"loss"}, []string{"save_w"})
		if err != nil {
			return 0, 0, err
		}
		loss := out[0].ScalarFloat()
		if step == 0 {
			first = loss
		}
		last = loss
	}
	return first, last, nil
}

// RunReal trains in-process: one session and driver goroutine per replica,
// gradients allreduced over a loopback ring fabric.
func RunReal(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := session.NewResources()
	groups := collective.NewLoopbackGroups(cfg.Workers, collective.Options{})
	for w, grp := range groups {
		res.Colls.Register(collGroup(w), grp)
	}
	defer res.Colls.CloseAll()

	sessions := make([]*session.Session, cfg.Workers)
	for w := range sessions {
		sess, err := session.New(buildWorker(cfg, w, collGroup(w), ""), res, session.Options{})
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}
	for w := 0; w < cfg.Workers; w++ {
		pre := fmt.Sprintf("w%d/", w)
		x, xt, y, w0 := shardTensors(cfg, w)
		res.Vars.Get(pre + "X").Assign(x)
		res.Vars.Get(pre + "Xt").Assign(xt)
		res.Vars.Get(pre + "y").Assign(y)
		res.Vars.Get(pre + "w").Assign(w0)
	}

	return runReplicas(cfg, sessions,
		func(w int) { groups[w].Close() }, // cascade failure to blocked peers
		func(w int) (*tensor.Tensor, error) {
			return res.Vars.Get(fmt.Sprintf("w%d/w", w)).Read()
		})
}

// runReplicas fans the per-replica training loops out, aggregates their
// outcomes (invoking abort on the first failure so peers blocked in a
// collective cascade instead of hanging), reads every replica's final
// weights back and assembles the Result — including the synchronous
// allreduce invariant that all replicas ended bit-for-bit equal.
func runReplicas(cfg Config, sessions []*session.Session,
	abort func(w int), readWeights func(w int) (*tensor.Tensor, error)) (*Result, error) {
	type out struct {
		first, last float64
		err         error
	}
	start := time.Now()
	outs := make([]out, cfg.Workers)
	var wg sync.WaitGroup
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			first, last, err := driveWorker(cfg, sessions[w])
			outs[w] = out{first, last, err}
			if err != nil {
				abort(w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	weights := make([]*tensor.Tensor, cfg.Workers)
	for w := range weights {
		wt, err := readWeights(w)
		if err != nil {
			return nil, err
		}
		weights[w] = wt
	}
	equal := true
	for w := 1; w < cfg.Workers; w++ {
		if !weights[w].Equal(weights[0]) {
			equal = false
		}
	}
	return &Result{
		InitialLoss:   outs[0].first,
		FinalLoss:     outs[0].last,
		WeightErr:     relWeightErr(weights[0], TrueWeights(cfg)),
		Steps:         cfg.Steps,
		Seconds:       elapsed,
		StepSeconds:   elapsed / float64(cfg.Steps),
		GradBytes:     int64(cfg.Features) * 8,
		ReplicasEqual: equal,
		Weights:       weights[0],
	}, nil
}
