package sgd

import (
	"fmt"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// ClusterOptions tune a distributed run over running task servers.
type ClusterOptions struct {
	// Job is the worker job name in the cluster spec (default "worker").
	Job string
	// HealthWait bounds how long to wait for the tasks to come up (default
	// 10s).
	HealthWait time.Duration
	// ChunkBytes is the ring pipelining granularity (0 = engine default).
	ChunkBytes int
}

// RunCluster trains over an already-running cluster: replica w's graph runs
// on /job:<job>/task:<w> and the per-step gradient allreduce rings over TCP
// directly between the task servers — the paper's Horovod deployment shape.
func RunCluster(cfg Config, peers *cluster.Peers, opts ClusterOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	job := opts.Job
	if job == "" {
		job = "worker"
	}
	// The ring spans every task of the job, so the replica count must match
	// exactly: a partial set of drivers would leave un-driven ranks blocking
	// the collectives until the receive timeout.
	if got := peers.Spec().NumTasks(job); got != cfg.Workers {
		return nil, fmt.Errorf("sgd: %d workers requested but job %q has %d tasks (counts must match)", cfg.Workers, job, got)
	}
	wait := opts.HealthWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	if err := peers.WaitHealthy(job, wait); err != nil {
		return nil, err
	}
	const group = "sgd"
	if err := peers.InitCollective(job, group, cluster.CollectiveOptions{
		ChunkBytes: opts.ChunkBytes,
		Fusion:     cfg.fusionOptions(),
	}); err != nil {
		return nil, err
	}

	sessions := make([]*session.Session, cfg.Workers)
	for w := range sessions {
		g := buildWorker(cfg, w, group, fmt.Sprintf("/job:%s/task:%d", job, w))
		sess, err := session.New(g, nil, session.Options{LocalJob: "client", Remote: peers})
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}
	for w := 0; w < cfg.Workers; w++ {
		dev := graph.DeviceSpec{Job: job, Task: w}
		for _, init := range workerInit(cfg, w) {
			if _, err := peers.RunRemoteOp(dev, "Assign", "init/"+init.Name,
				graph.Attrs{"var_name": init.Name}, []string{"value"},
				[]*tensor.Tensor{init.Val}); err != nil {
				return nil, fmt.Errorf("sgd: init %s: %w", init.Name, err)
			}
		}
	}

	return runReplicas(cfg, sessions,
		// Poison the ring on the servers so the other ranks cascade the
		// failure instead of blocking until the receive timeout.
		func(int) { peers.AbortCollective(job, group) },
		func(w int) (*tensor.Tensor, error) {
			return concatWeights(cfg, func(name string) (*tensor.Tensor, error) {
				return peers.RunRemoteOp(graph.DeviceSpec{Job: job, Task: w},
					"Variable", "read/w", graph.Attrs{"var_name": name}, nil, nil)
			}, w)
		})
}
