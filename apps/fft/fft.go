// Package fft implements the paper's data-driven 1-D Cooley-Tukey FFT
// (Fig. 6): the input signal is split into interleaved tiles stored as .npy
// files; workers each transform their share of tiles on GPU, the
// transformed tiles are collected with ragged AllGatherV collectives (the
// balanced replacement for the paper's single merger queue — sim mode
// still prices that deployment), and the tiles are combined with twiddle
// factors on the host — the merge the paper runs serially in Python and
// excludes from its scaling figures, here pool-parallel. Complex double
// precision throughout, as in the paper.
package fft

import (
	"fmt"

	"tfhpc/internal/fft"
	"tfhpc/internal/gemm"
)

// Config describes one FFT decomposition.
type Config struct {
	N       int // signal length, power of two
	Tiles   int // interleaved tiles, power of two dividing N
	Workers int
}

// Validate checks the decomposition.
func (c Config) Validate() error {
	if c.N <= 0 || c.N&(c.N-1) != 0 {
		return fmt.Errorf("fft: N=%d must be a positive power of two", c.N)
	}
	if c.Tiles <= 0 || c.Tiles&(c.Tiles-1) != 0 {
		return fmt.Errorf("fft: tiles=%d must be a positive power of two", c.Tiles)
	}
	if c.Tiles > c.N {
		return fmt.Errorf("fft: more tiles (%d) than samples (%d)", c.Tiles, c.N)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("fft: need at least one worker")
	}
	return nil
}

// TileLen is the per-tile sample count.
func (c Config) TileLen() int { return c.N / c.Tiles }

// TileBytes is the complex128 payload size of one tile.
func (c Config) TileBytes() int64 { return int64(c.TileLen()) * 16 }

// MergeInterleaved combines the FFTs of `tiles` stride-interleaved
// subsequences into the FFT of the full signal using log₂(tiles) passes of
// Cooley-Tukey twiddle butterflies. tiles[t] must be the transform of
// x[t], x[t+T], x[t+2T], ... where T = len(tiles).
//
// The recurrence: the transform of x[a::s] (length 2M) follows from the
// transforms G of x[a::2s] and H of x[a+s::2s] (length M each) as
//
//	X[k]   = G[k] + w^k·H[k]
//	X[k+M] = G[k] − w^k·H[k],   w = exp(−2πi/(2M)), k < M.
//
// Twiddles come from the FFT engine as per-pass tables (shared with the
// plan cache where plans already exist) — no per-element trigonometry —
// and every pass's butterflies fan out across the shared worker pool, so
// the host merge is no longer the serial "Python merge" of the paper's
// Section VIII.
func MergeInterleaved(tiles [][]complex128) ([]complex128, error) {
	T := len(tiles)
	if T == 0 || T&(T-1) != 0 {
		return nil, fmt.Errorf("fft: tile count %d must be a power of two", T)
	}
	m := len(tiles[0])
	for t, tile := range tiles {
		if len(tile) != m {
			return nil, fmt.Errorf("fft: tile %d has length %d, want %d", t, len(tile), m)
		}
	}
	// Ping-pong between two flat buffers; rows of cur/next are views.
	n := T * m
	cur, next := make([]complex128, n), make([]complex128, n)
	for t := range tiles {
		copy(cur[t*m:(t+1)*m], tiles[t])
	}
	// s counts the remaining interleave stride; each pass halves it.
	M := m
	for s := T / 2; s >= 1; s /= 2 {
		tw := fft.ForwardTwiddles(2 * M)
		row := func(buf []complex128, r, length int) []complex128 {
			return buf[r*length : (r+1)*length]
		}
		half := M
		gemm.ParallelFor(s*M, 1<<12, func(lo, hi int) {
			for f := lo; f < hi; {
				a := f / half
				k := f - a*half
				kEnd := min(half, k+(hi-f))
				g, h := row(cur, a, half), row(cur, a+s, half)
				out := row(next, a, 2*half)
				for ; k < kEnd; k++ {
					wh := tw[k] * h[k]
					out[k] = g[k] + wh
					out[k+half] = g[k] - wh
				}
				f = a*half + kEnd
			}
		})
		cur, next = next, cur
		M *= 2
	}
	return cur[:n], nil
}
