package fft

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tfhpc/internal/core"
	"tfhpc/internal/dataset"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealResult reports a real run. Following the paper, CollectSeconds (until
// the merger holds every transformed tile) is the timed portion; the serial
// host merge is reported separately.
type RealResult struct {
	X              []complex128 // the full transform
	CollectSeconds float64
	MergeSeconds   float64
	Gflops         float64 // over the collection phase, paper-style
}

// RunReal executes the full pipeline with real numerics: pre-processes the
// signal into interleaved .npy tiles under dir, streams them through worker
// FFT sessions into the merger's queue, collects, and merges on the host.
func RunReal(dir string, cfg Config, signal []complex128) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(signal) != cfg.N {
		return nil, fmt.Errorf("fft: signal length %d != N %d", len(signal), cfg.N)
	}
	paths, err := core.SaveInterleavedTiles(dir, "x", signal, cfg.Tiles)
	if err != nil {
		return nil, err
	}

	res := session.NewResources()
	const mergeQueue = "merge"
	res.Queues.Get(mergeQueue, 16)

	shared := dataset.FromFiles(paths)
	start := time.Now()

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers+1)
	abort := func() { res.Queues.Get(mergeQueue, 16).Close() }

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(cfg, res, shared, w); err != nil {
				errCh <- fmt.Errorf("fft worker %d: %w", w, err)
				abort()
			}
		}(w)
	}

	// Merger: collect all tiles through a dequeue graph.
	collected := make([][]complex128, cfg.Tiles)
	var collectDone time.Time
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := runMerger(cfg, res, collected); err != nil {
			errCh <- fmt.Errorf("fft merger: %w", err)
			abort()
			return
		}
		collectDone = time.Now()
	}()
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	collectSeconds := collectDone.Sub(start).Seconds()

	mergeStart := time.Now()
	x, err := MergeInterleaved(collected)
	if err != nil {
		return nil, err
	}
	return &RealResult{
		X:              x,
		CollectSeconds: collectSeconds,
		MergeSeconds:   time.Since(mergeStart).Seconds(),
		Gflops:         core.Gflops(core.FFTFlops(cfg.N), collectSeconds),
	}, nil
}

func runWorker(cfg Config, res *session.Resources, shared dataset.Dataset, w int) error {
	g := graph.New()
	ph := g.Placeholder("tile", tensor.Complex128, tensor.Shape{cfg.TileLen()})
	phIdx := g.Placeholder("idx", tensor.Int64, nil)
	var out *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		out = g.AddNamedOp("fft", "FFT", nil, ph)
	})
	enq := g.AddNamedOp("enq", "QueueEnqueue",
		graph.Attrs{"queue": "merge", "capacity": 16}, phIdx, out)
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return err
	}
	it := dataset.Prefetch(dataset.Shard(shared, cfg.Workers, w), 2).Iterator()
	for {
		elem, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		_, err = sess.Run(map[string]*tensor.Tensor{
			"idx":  elem[0],
			"tile": elem[1],
		}, nil, []string{enq.Name()})
		if err != nil {
			return err
		}
	}
}

func runMerger(cfg Config, res *session.Resources, collected [][]complex128) error {
	g := graph.New()
	deq := g.AddNamedOp("deq", "QueueDequeue", graph.Attrs{"queue": "merge", "capacity": 16})
	tile := g.AddNamedOp("tile", "DequeueComponent", graph.Attrs{"index": 1}, deq)
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return err
	}
	for n := 0; n < cfg.Tiles; n++ {
		out, err := sess.Run(nil, []string{deq.Name(), tile.Name()}, nil)
		if err != nil {
			return err
		}
		idx := int(out[0].ScalarInt())
		if idx < 0 || idx >= cfg.Tiles {
			return fmt.Errorf("fft: merger received tile index %d of %d", idx, cfg.Tiles)
		}
		if collected[idx] != nil {
			return fmt.Errorf("fft: merger received tile %d twice", idx)
		}
		collected[idx] = out[1].C128()
	}
	return nil
}
