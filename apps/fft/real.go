package fft

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/core"
	"tfhpc/internal/dataset"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealResult reports a real run. Following the paper, CollectSeconds (until
// every rank holds every transformed tile) is the timed portion; the host
// merge is reported separately.
type RealResult struct {
	X              []complex128 // the full transform
	CollectSeconds float64
	MergeSeconds   float64
	Gflops         float64 // over the collection phase, paper-style
}

// collGroup names worker w's membership in the in-process collective fabric.
func collGroup(w int) string { return fmt.Sprintf("fft/w%d", w) }

// RunReal executes the full pipeline with real numerics: pre-processes the
// signal into interleaved .npy tiles under dir, transforms each worker's
// shard through an FFT session, then collects with a pair of in-graph
// AllGatherV passes — tile indices and tile payloads, both ragged since the
// tile count rarely divides the worker count — replacing the central
// merger's dequeue loop: every rank ends holding every transformed tile,
// where the old queue service funnelled them through one task. The merge
// then combines them on the host.
func RunReal(dir string, cfg Config, signal []complex128) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(signal) != cfg.N {
		return nil, fmt.Errorf("fft: signal length %d != N %d", len(signal), cfg.N)
	}
	paths, err := core.SaveInterleavedTiles(dir, "x", signal, cfg.Tiles)
	if err != nil {
		return nil, err
	}

	res := session.NewResources()
	groups := collective.NewLoopbackGroups(cfg.Workers, collective.Options{})
	for w, grp := range groups {
		res.Colls.Register(collGroup(w), grp)
	}
	defer res.Colls.CloseAll()

	shared := dataset.FromFiles(paths)
	start := time.Now()

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	abort := func() {
		for _, grp := range groups {
			grp.Close()
		}
	}

	// gathered[w] holds worker w's copy of (indices, tiles) — identical on
	// every rank once the collective completes.
	type gatherOut struct {
		idx   *tensor.Tensor
		tiles *tensor.Tensor
	}
	gathered := make([]gatherOut, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			idx, tiles, err := runWorker(cfg, res, shared, w)
			if err != nil {
				errCh <- fmt.Errorf("fft worker %d: %w", w, err)
				abort()
				return
			}
			gathered[w] = gatherOut{idx, tiles}
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	collectSeconds := time.Since(start).Seconds()

	// Scatter rank 0's gathered tiles into index order for the merge.
	collected := make([][]complex128, cfg.Tiles)
	idx := gathered[0].idx.I64()
	flat := gathered[0].tiles.C128()
	m := cfg.TileLen()
	if len(idx)*m != len(flat) {
		return nil, fmt.Errorf("fft: gathered %d indices but %d samples", len(idx), len(flat))
	}
	for i, ti := range idx {
		if ti < 0 || int(ti) >= cfg.Tiles {
			return nil, fmt.Errorf("fft: gathered tile index %d of %d", ti, cfg.Tiles)
		}
		if collected[ti] != nil {
			return nil, fmt.Errorf("fft: tile %d gathered twice", ti)
		}
		collected[ti] = flat[i*m : (i+1)*m]
	}
	for ti, tile := range collected {
		if tile == nil {
			return nil, fmt.Errorf("fft: tile %d never gathered", ti)
		}
	}

	mergeStart := time.Now()
	x, err := MergeInterleaved(collected)
	if err != nil {
		return nil, err
	}
	return &RealResult{
		X:              x,
		CollectSeconds: collectSeconds,
		MergeSeconds:   time.Since(mergeStart).Seconds(),
		Gflops:         core.Gflops(core.FFTFlops(cfg.N), collectSeconds),
	}, nil
}

// runWorker transforms the worker's tile shard through an FFT session and
// returns the group-wide gathers of tile indices and tile payloads.
func runWorker(cfg Config, res *session.Resources, shared dataset.Dataset, w int) (idx, tiles *tensor.Tensor, err error) {
	g := graph.New()
	ph := g.Placeholder("tile", tensor.Complex128, tensor.Shape{cfg.TileLen()})
	var out *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		out = g.AddNamedOp("fft", "FFT", nil, ph)
	})
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return nil, nil, err
	}
	var myIdx []int64
	var myTiles []complex128
	it := dataset.Prefetch(dataset.Shard(shared, cfg.Workers, w), 2).Iterator()
	for {
		elem, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		outs, err := sess.Run(map[string]*tensor.Tensor{"tile": elem[1]},
			[]string{out.Name()}, nil)
		if err != nil {
			return nil, nil, err
		}
		myIdx = append(myIdx, elem[0].ScalarInt())
		myTiles = append(myTiles, outs[0].C128()...)
	}

	// Collection: two ragged allgathers (this worker may own zero tiles
	// when workers outnumber tiles), concatenated in rank order on every
	// rank so the index gather labels the payload gather positionally.
	cg := graph.New()
	phI := cg.Placeholder("idx", tensor.Int64, tensor.Shape{len(myIdx)})
	phT := cg.Placeholder("tiles", tensor.Complex128, tensor.Shape{len(myTiles)})
	agI := cg.AddNamedOp("ag_idx", "AllGatherV", graph.Attrs{"group": collGroup(w), "key": "idx"}, phI)
	agT := cg.AddNamedOp("ag_tiles", "AllGatherV", graph.Attrs{"group": collGroup(w), "key": "tiles"}, phT)
	csess, err := session.New(cg, res, session.Options{})
	if err != nil {
		return nil, nil, err
	}
	outs, err := csess.Run(map[string]*tensor.Tensor{
		"idx":   tensor.FromI64(tensor.Shape{len(myIdx)}, myIdx),
		"tiles": tensor.FromC128(tensor.Shape{len(myTiles)}, myTiles),
	}, []string{agI.Name(), agT.Name()}, nil)
	if err != nil {
		return nil, nil, err
	}
	return outs[0], outs[1], nil
}
