package fft

import (
	"fmt"

	"tfhpc/internal/core"
	"tfhpc/internal/hw"
	"tfhpc/internal/sim"
)

// SimConfig describes one point of Fig. 11 on the virtual platform.
type SimConfig struct {
	Cluster  *hw.Cluster
	NodeType *hw.NodeType
	Config   Config // Workers = GPU instances; one merger as in the paper
}

// SimResult is the virtual-time outcome. Seconds covers the timed portion
// of the paper's figure — application start until the merger holds every
// transformed tile; the serial host merge is estimated separately.
type SimResult struct {
	Seconds         float64
	Gflops          float64
	EstMergeSeconds float64
	GPUUtil, FSUtil float64
}

// Cost-model constants. The merger's per-tile overhead is the session
// dispatch + dequeue-to-host path the paper blames for the FFT's serial
// bottleneck ("directly performing slicing insertion into a local Numpy
// array ... already hampers overall performance").
const (
	mergerIngestBW  = 2.6e9
	mergerPerTile   = 30e-3
	workerPerTileOv = 20e-3 // session dispatch per tile on the worker
)

// RunSim executes the FFT pipeline in virtual time: per-node prefetch
// processes stream tiles off Lustre while worker instances stage, transform
// and ship them to the single merger, which ingests serially.
func RunSim(sc SimConfig) (*SimResult, error) {
	cfg := sc.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nt := sc.NodeType
	if 2*cfg.TileBytes() > nt.GPU.MemBytes {
		return nil, fmt.Errorf("fft: tile of %d samples does not fit %s memory",
			cfg.TileLen(), nt.GPU.Name)
	}
	place, err := core.NewPlacement(sc.Cluster, nt, cfg.Workers)
	if err != nil {
		return nil, err
	}

	eng := sim.New()
	tb := float64(cfg.TileBytes())
	fftTime := nt.GPU.FFTTime(cfg.TileLen(), true)
	wireEff := sc.Cluster.RDMAEff * sc.Cluster.Wire.BW

	// Per-node filesystem streams and per-instance GPUs.
	fsRes := make([]*sim.Resource, place.NumNodes)
	for n := range fsRes {
		fsRes[n] = eng.NewResource(fmt.Sprintf("fs%d", n), 1)
	}
	gpus := make([]*sim.Resource, cfg.Workers)
	prefetched := make([]*sim.Store, cfg.Workers)
	for i := range gpus {
		gpus[i] = eng.NewResource(fmt.Sprintf("gpu%d", i), 1)
		prefetched[i] = eng.NewStore(fmt.Sprintf("prefetch%d", i), 2)
	}
	mergeStore := eng.NewStore("merge", 16)

	tilesOf := func(inst int) int {
		n := 0
		for t := inst; t < cfg.Tiles; t += cfg.Workers {
			n++
		}
		return n
	}

	// Prefetch pipelines: one per instance, contending on the node's FS
	// stream (the tf.data input pipeline of the paper).
	for i := 0; i < cfg.Workers; i++ {
		inst := i
		eng.Go(fmt.Sprintf("prefetch%d", inst), func(p *sim.Process) {
			node := place.Node[inst]
			for n := 0; n < tilesOf(inst); n++ {
				fsRes[node].Use(p, tb/nt.FSReadBW)
				if prefetched[inst].Put(p, n) != nil {
					return
				}
			}
		})
	}

	// Worker instances: stage, FFT, send to the merger.
	for i := 0; i < cfg.Workers; i++ {
		inst := i
		eng.Go(fmt.Sprintf("worker%d", inst), func(p *sim.Process) {
			for n := 0; n < tilesOf(inst); n++ {
				if _, err := prefetched[inst].Get(p); err != nil {
					return
				}
				p.Wait(workerPerTileOv)
				p.Wait(tb / nt.GPU.PCIeBW) // H2D
				gpus[inst].Use(p, fftTime)
				p.Wait(tb / nt.GPU.PCIeBW) // D2H
				p.Wait(tb/wireEff + sc.Cluster.Wire.Latency)
				if mergeStore.Put(p, n) != nil {
					return
				}
			}
		})
	}

	// The single merger collects every tile; the timed portion ends with
	// the last ingest.
	var collectEnd float64
	eng.Go("merger", func(p *sim.Process) {
		for n := 0; n < cfg.Tiles; n++ {
			if _, err := mergeStore.Get(p); err != nil {
				return
			}
			p.Wait(mergerPerTile + tb/mergerIngestBW)
		}
		collectEnd = p.Now()
	})

	if _, err := eng.Run(); err != nil {
		return nil, err
	}

	// The host merge touches all N samples log2(Tiles) times at the node's
	// serialize-grade throughput — the Python bottleneck of Section VIII.
	passes := 0
	for v := cfg.Tiles; v > 1; v >>= 1 {
		passes++
	}
	mergeBytes := float64(passes) * 2 * 16 * float64(cfg.N)
	res := &SimResult{
		Seconds:         collectEnd,
		Gflops:          core.Gflops(core.FFTFlops(cfg.N), collectEnd),
		EstMergeSeconds: mergeBytes / nt.SerializeBW,
	}
	for _, g := range gpus {
		res.GPUUtil += g.Utilisation()
	}
	res.GPUUtil /= float64(len(gpus))
	for _, f := range fsRes {
		res.FSUtil += f.Utilisation()
	}
	res.FSUtil /= float64(len(fsRes))
	return res, nil
}

// Fig11Curve is one platform's scaling series.
type Fig11Curve struct {
	Platform string
	N        int
	Tiles    int
	Points   []core.ScalingPoint
}

// Fig11 regenerates the figure: the FFT on Tegner with K420 GPUs (N=2²⁹ in
// 64 tiles) and K80 GPUs (N=2³¹ in 128 tiles), one merger, 2 to 8 GPUs.
func Fig11() ([]Fig11Curve, error) {
	type platform struct {
		label string
		node  string
		n     int
		tiles int
	}
	platforms := []platform{
		{"Tegner K420", "k420", 1 << 29, 64},
		{"Tegner K80", "k80", 1 << 31, 128},
	}
	var curves []Fig11Curve
	for _, pf := range platforms {
		nt := hw.Tegner.NodeTypes[pf.node]
		curve := Fig11Curve{Platform: pf.label, N: pf.n, Tiles: pf.tiles}
		for _, g := range []int{2, 4, 8} {
			res, err := RunSim(SimConfig{
				Cluster:  hw.Tegner,
				NodeType: nt,
				Config:   Config{N: pf.n, Tiles: pf.tiles, Workers: g},
			})
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, core.ScalingPoint{GPUs: g, Gflops: res.Gflops})
		}
		curves = append(curves, curve)
	}
	return curves, nil
}
