package fft

import (
	"math/cmplx"
	"testing"

	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/tensor"
)

func randSignal(seed uint64, n int) []complex128 {
	r := tensor.NewRNG(seed)
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return out
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{N: 1024, Tiles: 8, Workers: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{N: 1000, Tiles: 8, Workers: 1}, // N not power of two
		{N: 1024, Tiles: 3, Workers: 1}, // tiles not power of two
		{N: 8, Tiles: 16, Workers: 1},   // more tiles than samples
		{N: 1024, Tiles: 8, Workers: 0}, // no workers
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should be invalid", bad)
		}
	}
}

func TestMergeInterleavedMatchesFFT(t *testing.T) {
	for _, tc := range []struct{ n, tiles int }{
		{64, 2}, {64, 4}, {256, 8}, {1024, 16}, {64, 1},
	} {
		x := randSignal(uint64(tc.n), tc.n)
		// Build per-tile transforms directly.
		chunk := tc.n / tc.tiles
		tiles := make([][]complex128, tc.tiles)
		for tt := 0; tt < tc.tiles; tt++ {
			tile := make([]complex128, chunk)
			for i := range tile {
				tile[i] = x[tt+i*tc.tiles]
			}
			if err := ops.FFTInPlace(tile, false); err != nil {
				t.Fatal(err)
			}
			tiles[tt] = tile
		}
		got, err := MergeInterleaved(tiles)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]complex128(nil), x...)
		if err := ops.FFTInPlace(want, false); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(tc.n) {
				t.Fatalf("n=%d tiles=%d: merge[%d] = %v, want %v", tc.n, tc.tiles, i, got[i], want[i])
			}
		}
	}
}

// TestMergeInterleavedNonPowerOfTwoTiles exercises the merge recurrence
// with tile lengths no engine plan exists for (the per-pass twiddle-table
// fallback): the recurrence itself holds for any equal tile length.
func TestMergeInterleavedNonPowerOfTwoTiles(t *testing.T) {
	const tiles, m = 4, 3
	n := tiles * m
	x := randSignal(13, n)
	parts := make([][]complex128, tiles)
	for tt := 0; tt < tiles; tt++ {
		sub := make([]complex128, m)
		for i := range sub {
			sub[i] = x[tt+i*tiles]
		}
		parts[tt] = ops.NaiveDFT(sub, false)
	}
	got, err := MergeInterleaved(parts)
	if err != nil {
		t.Fatal(err)
	}
	want := ops.NaiveDFT(x, false)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
			t.Fatalf("merge[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeInterleavedErrors(t *testing.T) {
	if _, err := MergeInterleaved(nil); err == nil {
		t.Fatal("empty tile list should error")
	}
	if _, err := MergeInterleaved(make([][]complex128, 3)); err == nil {
		t.Fatal("non power-of-two tile count should error")
	}
	bad := [][]complex128{make([]complex128, 4), make([]complex128, 8)}
	if _, err := MergeInterleaved(bad); err == nil {
		t.Fatal("ragged tiles should error")
	}
}

// The headline correctness property: the full distributed pipeline equals a
// direct FFT of the signal.
func TestRealPipelineMatchesDirectFFT(t *testing.T) {
	cfg := Config{N: 1 << 12, Tiles: 8, Workers: 3}
	x := randSignal(42, cfg.N)
	res, err := RunReal(t.TempDir(), cfg, x)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]complex128(nil), x...)
	if err := ops.FFTInPlace(want, false); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cmplx.Abs(res.X[i]-want[i]) > 1e-7*float64(cfg.N) {
			t.Fatalf("pipeline[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
	if res.CollectSeconds <= 0 || res.Gflops <= 0 {
		t.Fatalf("implausible timing: %+v", res)
	}
}

func TestRealPipelineSingleWorker(t *testing.T) {
	cfg := Config{N: 256, Tiles: 4, Workers: 1}
	x := randSignal(7, cfg.N)
	res, err := RunReal(t.TempDir(), cfg, x)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]complex128(nil), x...)
	ops.FFTInPlace(want, false)
	for i := range want {
		if cmplx.Abs(res.X[i]-want[i]) > 1e-8*float64(cfg.N) {
			t.Fatalf("single-worker pipeline wrong at %d", i)
		}
	}
}

func TestRealPipelineSignalLengthMismatch(t *testing.T) {
	if _, err := RunReal(t.TempDir(), Config{N: 64, Tiles: 4, Workers: 1},
		randSignal(1, 32)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSimScalingShape(t *testing.T) {
	run := func(node string, n, tiles, gpus int) float64 {
		res, err := RunSim(SimConfig{
			Cluster:  hw.Tegner,
			NodeType: hw.Tegner.NodeTypes[node],
			Config:   Config{N: n, Tiles: tiles, Workers: gpus},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gflops
	}
	// Paper: 1.6-1.8x from 2 to 4 GPUs, flattening from 4 to 8, on both
	// GPU models.
	for _, pf := range []struct {
		node     string
		n, tiles int
	}{
		{"k420", 1 << 29, 64},
		{"k80", 1 << 31, 128},
	} {
		g2 := run(pf.node, pf.n, pf.tiles, 2)
		g4 := run(pf.node, pf.n, pf.tiles, 4)
		g8 := run(pf.node, pf.n, pf.tiles, 8)
		if r := g4 / g2; r < 1.5 || r > 2.1 {
			t.Fatalf("%s 2->4 = %.2f, paper 1.6-1.8", pf.node, r)
		}
		if r := g8 / g4; r > 1.35 {
			t.Fatalf("%s 4->8 = %.2f, paper sees flattening", pf.node, r)
		}
	}
	// K80 runs the 4x bigger problem faster in absolute terms.
	if run("k80", 1<<31, 128, 8) <= run("k420", 1<<29, 64, 8) {
		t.Fatal("K80 should outperform K420")
	}
}

func TestSimMergeEstimateDominates(t *testing.T) {
	// Section VIII: the Python merge takes considerably longer than the
	// TensorFlow compute portion.
	res, err := RunSim(SimConfig{
		Cluster:  hw.Tegner,
		NodeType: hw.Tegner.NodeTypes["k80"],
		Config:   Config{N: 1 << 31, Tiles: 128, Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstMergeSeconds < res.Seconds {
		t.Fatalf("merge (%.1fs) should dominate collection (%.1fs)",
			res.EstMergeSeconds, res.Seconds)
	}
}

func TestSimRejectsOversizedTile(t *testing.T) {
	// One 2^26-sample complex128 tile is 1 GiB x2 > K420's 1 GB.
	_, err := RunSim(SimConfig{
		Cluster:  hw.Tegner,
		NodeType: hw.Tegner.NodeTypes["k420"],
		Config:   Config{N: 1 << 28, Tiles: 4, Workers: 2},
	})
	if err == nil {
		t.Fatal("oversized tile should be rejected")
	}
}

func TestFig11Curves(t *testing.T) {
	curves, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 3 {
			t.Fatalf("%s has %d points", c.Platform, len(c.Points))
		}
	}
}
