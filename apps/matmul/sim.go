package matmul

import (
	"fmt"

	"tfhpc/internal/core"
	"tfhpc/internal/hw"
	"tfhpc/internal/sim"
)

// SimConfig describes one bar of Fig. 8 on the virtual platform.
type SimConfig struct {
	Cluster  *hw.Cluster
	NodeType *hw.NodeType
	Config   Config // Workers = number of GPU instances
}

// SimResult is the virtual-time outcome.
type SimResult struct {
	Seconds float64
	Gflops  float64
	// Utilisation diagnostics (0..1) help explain scaling behaviour.
	GPUUtil float64
	HubUtil float64
}

// The matmul cost model. Each TensorFlow instance runs a serial pipeline per
// tile product — deserialize the two input tiles into the runtime, pack
// them into the GEMM engine's panel buffers, stage them over PCIe,
// multiply, stage back, serialize the product into the reducer's queue —
// while per-node I/O hubs carry every byte a node reads
// from Lustre or sends on the fabric (all through one NUMA island, Fig. 9),
// and the reducers ingest result tiles serially.
const (
	// crossIslandPenalty inflates hub occupancy for instances whose GPU
	// sits on the NUMA island without the I/O devices (QPI crossing).
	crossIslandPenalty = 1.25
)

// hubBW is the effective per-node I/O throughput under concurrent streams.
// Kebnekaise's is lower: four instances per node all funnel through the
// single I/O island of Fig. 9.
func hubBW(c *hw.Cluster) float64 {
	if c == hw.Kebnekaise {
		return 1.55e9
	}
	return 2.2e9
}

// reducerIngestBW is the end-to-end rate at which one reducer instance
// pulls a result tile from its queue and accumulates it. The Kebnekaise
// figure is calibrated to the paper's observation that matmul scaling there
// was "less satisfactory" with high variability — the reducers share their
// nodes with four competing instances.
func reducerIngestBW(c *hw.Cluster) float64 {
	if c == hw.Kebnekaise {
		return 0.29e9
	}
	return 1.05e9
}

// RunSim executes the tiled matmul pipeline in virtual time.
func RunSim(sc SimConfig) (*SimResult, error) {
	cfg := sc.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nt := sc.NodeType
	// One GPU engine must hold three tiles (two inputs, one output).
	if 3*cfg.TileBytes() > nt.GPU.MemBytes {
		return nil, fmt.Errorf("matmul: tile %d does not fit %s memory", cfg.Tile, nt.GPU.Name)
	}
	place, err := core.NewPlacement(sc.Cluster, nt, cfg.Workers)
	if err != nil {
		return nil, err
	}

	eng := sim.New()
	tb := float64(cfg.TileBytes())
	hub := hubBW(sc.Cluster)

	hubs := make([]*sim.Resource, place.NumNodes)
	for n := range hubs {
		hubs[n] = eng.NewResource(fmt.Sprintf("hub%d", n), 1)
	}
	pcie := make(map[[2]int]*sim.Resource)
	gpus := make([]*sim.Resource, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		gpus[i] = eng.NewResource(fmt.Sprintf("gpu%d", i), 1)
		key := [2]int{place.Node[i], place.IslandOf[i]}
		if pcie[key] == nil {
			pcie[key] = eng.NewResource(fmt.Sprintf("pcie%d_%d", key[0], key[1]), 1)
		}
	}

	// Reducers are separate tasks on their own nodes (the paper's "2+N"
	// notation counts them separately); each ingests its queue serially.
	stores := make([]*sim.Store, cfg.Reducers)
	for r := range stores {
		stores[r] = eng.NewStore(fmt.Sprintf("reduce%d", r), 16)
	}

	tasks := cfg.Tasks()
	expected := make([]int, cfg.Reducers)
	for _, t := range tasks {
		expected[t.Reducer(cfg)]++
	}

	gemmTime := nt.GPU.GemmTime(cfg.Tile, cfg.Tile, cfg.Tile, false)
	feedTime := 2 * tb / nt.SerializeBW            // npy -> runtime tensors
	packTime := 2 * tb / nt.HostMemBW              // GEMM engine packs both input panels
	enqTime := tb / nt.SerializeBW                 // product -> queue message
	hubTaskTime := 3 * tb / hub                    // 2 reads + 1 send on the node hub
	ingestTime := tb / reducerIngestBW(sc.Cluster) // queue -> host accumulate

	for i := 0; i < cfg.Workers; i++ {
		inst := i
		eng.Go(fmt.Sprintf("worker%d", inst), func(p *sim.Process) {
			node := place.Node[inst]
			island := place.IslandOf[inst]
			penalty := 1.0
			if island != nt.NICIsland {
				penalty = crossIslandPenalty
			}
			board := pcie[[2]int{node, island}]
			for idx := inst; idx < len(tasks); idx += cfg.Workers {
				task := tasks[idx]
				// Node hub: Lustre reads and the result send.
				hubs[node].Use(p, penalty*hubTaskTime)
				// Instance pipeline: deserialize, pack panels, stage,
				// multiply, stage, serialize into the queue.
				p.Wait(feedTime + packTime)
				board.Use(p, 2*tb/nt.GPU.PCIeBW)
				gpus[inst].Use(p, gemmTime)
				board.Use(p, tb/nt.GPU.PCIeBW)
				p.Wait(enqTime)
				r := task.Reducer(cfg)
				if err := stores[r].Put(p, task.Target(cfg.TilesPerDim())); err != nil {
					return
				}
			}
		})
	}

	for r := 0; r < cfg.Reducers; r++ {
		red := r
		eng.Go(fmt.Sprintf("reducer%d", red), func(p *sim.Process) {
			for n := 0; n < expected[red]; n++ {
				if _, err := stores[red].Get(p); err != nil {
					return
				}
				p.Wait(ingestTime + 3*tb/nt.HostMemBW)
			}
		})
	}

	makespan, err := eng.Run()
	if err != nil {
		return nil, err
	}
	res := &SimResult{
		Seconds: makespan,
		Gflops:  core.Gflops(core.MatMulFlops(cfg.N), makespan),
	}
	for _, g := range gpus {
		res.GPUUtil += g.Utilisation()
	}
	res.GPUUtil /= float64(len(gpus))
	for _, h := range hubs {
		res.HubUtil += h.Utilisation()
	}
	res.HubUtil /= float64(len(hubs))
	return res, nil
}

// Fig8Curve is one platform's strong-scaling series at one problem size.
type Fig8Curve struct {
	Platform string
	N        int
	Tile     int
	Points   []core.ScalingPoint
}

// Fig8 regenerates the figure: tiled matmul on Tegner K420 (tile 4096, all
// sizes), Tegner K80 and Kebnekaise K80 (tile 8192, the two large sizes),
// with two reducers and 2..16 GPUs as in the paper.
func Fig8() ([]Fig8Curve, error) {
	type platform struct {
		label   string
		cluster *hw.Cluster
		node    string
		tile    int
		sizes   []int
		gpus    []int
	}
	platforms := []platform{
		{"Tegner K420", hw.Tegner, "k420", 4096, []int{16384, 32768, 65536}, []int{2, 4, 8}},
		{"Tegner K80", hw.Tegner, "k80", 8192, []int{32768, 65536}, []int{2, 4, 8}},
		{"Kebnekaise K80", hw.Kebnekaise, "k80", 8192, []int{32768, 65536}, []int{2, 4, 8, 16}},
	}
	var curves []Fig8Curve
	for _, pf := range platforms {
		nt := pf.cluster.NodeTypes[pf.node]
		for _, n := range pf.sizes {
			curve := Fig8Curve{Platform: pf.label, N: n, Tile: pf.tile}
			for _, g := range pf.gpus {
				res, err := RunSim(SimConfig{
					Cluster:  pf.cluster,
					NodeType: nt,
					Config:   Config{N: n, Tile: pf.tile, Workers: g, Reducers: 2},
				})
				if err != nil {
					return nil, err
				}
				curve.Points = append(curve.Points, core.ScalingPoint{GPUs: g, Gflops: res.Gflops})
			}
			curves = append(curves, curve)
		}
	}
	return curves, nil
}
