// Package matmul implements the paper's tiled matrix-matrix multiplication
// (Fig. 4): two large matrices are pre-processed into .npy tiles; a shared
// dataset lists the (i, k, j) tile products; workers stream their shard of
// the list and multiply tile pairs on their GPU. In real mode each worker
// accumulates its products into a local partial of C and the partials are
// summed with one in-graph ReduceScatter + AllGatherV pass over the
// collective engine — the balanced replacement for the paper's two reducer
// queues, which sim mode still models faithfully (Fig. 4 prices the
// queue-and-reducer deployment). Single precision as in the paper.
package matmul

import "fmt"

// Config describes one problem instance.
type Config struct {
	N    int // matrix dimension
	Tile int // tile dimension (4096 for K420, 8192 for K80 in the paper)
	// Workers counts the mapper TensorFlow instances. Reducers counts the
	// reducer tasks of the paper's deployment — sim mode models them (the
	// paper uses two, odd and even target indices); real mode reduces over
	// collectives between the workers instead.
	Workers  int
	Reducers int
}

// Validate checks the decomposition is well-formed.
func (c Config) Validate() error {
	if c.N <= 0 || c.Tile <= 0 || c.N%c.Tile != 0 {
		return fmt.Errorf("matmul: tile %d must divide N %d", c.Tile, c.N)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("matmul: need at least one worker")
	}
	if c.Reducers <= 0 {
		return fmt.Errorf("matmul: need at least one reducer")
	}
	return nil
}

// TilesPerDim returns N/Tile.
func (c Config) TilesPerDim() int { return c.N / c.Tile }

// Task is one tile product: C[I,J] += A[I,K] · B[K,J].
type Task struct {
	I, K, J int
}

// Target returns the flat output-tile index; the paper routes odd and even
// targets to different reducers.
func (t Task) Target(tilesPerDim int) int { return t.I*tilesPerDim + t.J }

// Reducer returns which reducer accumulates this task's product.
func (t Task) Reducer(c Config) int { return t.Target(c.TilesPerDim()) % c.Reducers }

// Tasks enumerates every tile product in deterministic order.
func (c Config) Tasks() []Task {
	tpd := c.TilesPerDim()
	out := make([]Task, 0, tpd*tpd*tpd)
	for i := 0; i < tpd; i++ {
		for j := 0; j < tpd; j++ {
			for k := 0; k < tpd; k++ {
				out = append(out, Task{I: i, K: k, J: j})
			}
		}
	}
	return out
}

// TaskFlops is the flop count of one tile product (2·t³ for a t×t GEMM).
func (c Config) TaskFlops() float64 {
	t := float64(c.Tile)
	return 2 * t * t * t
}

// TileBytes is the size of one float32 tile.
func (c Config) TileBytes() int64 {
	return int64(c.Tile) * int64(c.Tile) * 4
}
