package matmul

import (
	"testing"

	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/tensor"
)

func TestConfigValidation(t *testing.T) {
	good := Config{N: 64, Tile: 16, Workers: 2, Reducers: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{N: 64, Tile: 17, Workers: 1, Reducers: 1}, // tile does not divide
		{N: 64, Tile: 16, Workers: 0, Reducers: 1},
		{N: 64, Tile: 16, Workers: 1, Reducers: 0},
		{N: 0, Tile: 16, Workers: 1, Reducers: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v should be invalid", bad)
		}
	}
}

func TestTaskEnumeration(t *testing.T) {
	cfg := Config{N: 64, Tile: 16, Workers: 1, Reducers: 2}
	tasks := cfg.Tasks()
	if len(tasks) != 4*4*4 {
		t.Fatalf("task count %d, want 64", len(tasks))
	}
	// Every (i,j) target appears exactly tilesPerDim times (once per k).
	counts := map[int]int{}
	for _, task := range tasks {
		counts[task.Target(cfg.TilesPerDim())]++
	}
	if len(counts) != 16 {
		t.Fatalf("distinct targets %d, want 16", len(counts))
	}
	for target, c := range counts {
		if c != 4 {
			t.Fatalf("target %d has %d tasks, want 4", target, c)
		}
	}
	// Odd/even reducer split covers both reducers.
	seen := map[int]bool{}
	for _, task := range tasks {
		seen[task.Reducer(cfg)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatal("both reducers should receive work")
	}
}

// The headline correctness property: the full distributed pipeline (tile
// files → sharded dataset → worker sessions → reduce-scatter/allgatherv
// over the collective engine) produces the same product as a direct MatMul.
func TestRealPipelineMatchesDirect(t *testing.T) {
	cfg := Config{N: 64, Tile: 16, Workers: 3, Reducers: 2}
	a := tensor.RandomUniform(tensor.Float32, 1, cfg.N, cfg.N)
	b := tensor.RandomUniform(tensor.Float32, 2, cfg.N, cfg.N)
	res, err := RunReal(t.TempDir(), cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ops.Run("MatMul", &ops.Context{}, []*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !res.C.ApproxEqual(want, 1e-3) {
		t.Fatal("pipeline product != direct product")
	}
	if res.Gflops <= 0 || res.Seconds <= 0 {
		t.Fatalf("implausible perf report: %+v", res)
	}
}

func TestRealPipelineSingleWorkerSingleReducer(t *testing.T) {
	cfg := Config{N: 32, Tile: 8, Workers: 1, Reducers: 1}
	a := tensor.RandomUniform(tensor.Float32, 3, cfg.N, cfg.N)
	b := tensor.RandomUniform(tensor.Float32, 4, cfg.N, cfg.N)
	res, err := RunReal(t.TempDir(), cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ops.Run("MatMul", &ops.Context{}, []*tensor.Tensor{a, b})
	if !res.C.ApproxEqual(want, 1e-3) {
		t.Fatal("1x1 pipeline wrong")
	}
}

func TestRealPipelineManyWorkers(t *testing.T) {
	// More workers than tasks in a column exercises shard edge cases.
	cfg := Config{N: 32, Tile: 16, Workers: 7, Reducers: 3}
	a := tensor.RandomUniform(tensor.Float32, 5, cfg.N, cfg.N)
	b := tensor.RandomUniform(tensor.Float32, 6, cfg.N, cfg.N)
	res, err := RunReal(t.TempDir(), cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ops.Run("MatMul", &ops.Context{}, []*tensor.Tensor{a, b})
	if !res.C.ApproxEqual(want, 1e-3) {
		t.Fatal("7-worker pipeline wrong")
	}
}

func TestSimRejectsOversizedTiles(t *testing.T) {
	// A 16384² float32 tile (1 GiB) cannot fit a K420's 1 GB with three
	// resident tiles — the constraint that drove the paper's tile choices.
	_, err := RunSim(SimConfig{
		Cluster:  hw.Tegner,
		NodeType: hw.Tegner.NodeTypes["k420"],
		Config:   Config{N: 32768, Tile: 16384, Workers: 2, Reducers: 2},
	})
	if err == nil {
		t.Fatal("oversized tile should be rejected")
	}
}

func TestSimScalesOnTegner(t *testing.T) {
	run := func(gpus int) float64 {
		res, err := RunSim(SimConfig{
			Cluster:  hw.Tegner,
			NodeType: hw.Tegner.NodeTypes["k420"],
			Config:   Config{N: 32768, Tile: 4096, Workers: gpus, Reducers: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gflops
	}
	g2, g4, g8 := run(2), run(4), run(8)
	// Paper: ~2x from 2 to 4 GPUs and again from 4 to 8 on Tegner K420.
	if r := g4 / g2; r < 1.6 || r > 2.2 {
		t.Fatalf("Tegner K420 2->4 speedup %.2f, want ~2.0", r)
	}
	if r := g8 / g4; r < 1.5 || r > 2.2 {
		t.Fatalf("Tegner K420 4->8 speedup %.2f, want ~2.0", r)
	}
}

func TestSimKebnekaiseScalesWorseThanTegner(t *testing.T) {
	speedup := func(c *hw.Cluster, node string, n int) float64 {
		var g [2]float64
		for i, gpus := range []int{2, 4} {
			res, err := RunSim(SimConfig{
				Cluster:  c,
				NodeType: c.NodeTypes[node],
				Config:   Config{N: n, Tile: 8192, Workers: gpus, Reducers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			g[i] = res.Gflops
		}
		return g[1] / g[0]
	}
	tegner := speedup(hw.Tegner, "k80", 65536)
	keb := speedup(hw.Kebnekaise, "k80", 32768)
	if keb >= tegner {
		t.Fatalf("Kebnekaise (%.2f) should scale worse than Tegner (%.2f) — Fig. 9 contention", keb, tegner)
	}
	if keb < 1.1 || keb > 1.8 {
		t.Fatalf("Kebnekaise 2->4 speedup %.2f, paper ~1.4", keb)
	}
	if tegner < 1.5 || tegner > 2.2 {
		t.Fatalf("Tegner K80 2->4 speedup %.2f, paper ~1.8", tegner)
	}
}

func TestFig8ProducesAllCurves(t *testing.T) {
	curves, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 7 { // 3 K420 sizes + 2 Tegner K80 + 2 Kebnekaise K80
		t.Fatalf("curve count %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) < 3 {
			t.Fatalf("%s N=%d has %d points", c.Platform, c.N, len(c.Points))
		}
		for _, p := range c.Points {
			if p.Gflops <= 0 {
				t.Fatalf("%s N=%d @%d GPUs: %v Gflops", c.Platform, c.N, p.GPUs, p.Gflops)
			}
		}
	}
}
