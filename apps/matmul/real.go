package matmul

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tfhpc/internal/collective"
	"tfhpc/internal/core"
	"tfhpc/internal/dataset"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealResult is the outcome of an actual in-process run.
type RealResult struct {
	Seconds float64
	Gflops  float64
	// C is the assembled product matrix.
	C *tensor.Tensor
}

// collGroup names worker w's membership in the in-process collective fabric.
func collGroup(w int) string { return fmt.Sprintf("matmul/w%d", w) }

// RunReal executes the full pipeline with real numerics: pre-processes A
// and B into .npy tiles under dir, streams the shared task list through
// worker sessions (one graph per worker: two tile placeholders → MatMul),
// each worker accumulating its products into a local partial of C, then
// reduces the partials with one in-graph ReduceScatter + AllGatherV pass —
// the balanced collective that replaced the two central reducer queues
// (every worker reduces an even share instead of two tasks ingesting
// everything). Timing covers the map-reduce phase only, matching the paper
// (pre-processing is excluded).
func RunReal(dir string, cfg Config, a, b *tensor.Tensor) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	storeA, err := core.SaveMatrixTiles(dir, "A", a, cfg.Tile)
	if err != nil {
		return nil, err
	}
	storeB, err := core.SaveMatrixTiles(dir, "B", b, cfg.Tile)
	if err != nil {
		return nil, err
	}

	// One collective group spans the workers; the reduction rings between
	// them with no designated reducer task.
	res := session.NewResources()
	groups := collective.NewLoopbackGroups(cfg.Workers, collective.Options{})
	for w, grp := range groups {
		res.Colls.Register(collGroup(w), grp)
	}
	defer res.Colls.CloseAll()

	// The shared dataset of tasks, sharded per worker.
	tasks := cfg.Tasks()
	elems := make([]dataset.Element, len(tasks))
	for i, t := range tasks {
		elems[i] = dataset.Element{tensor.FromI64(tensor.Shape{3}, []int64{int64(t.I), int64(t.K), int64(t.J)})}
	}
	shared := dataset.FromElements(elems...)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	// On any failure, poison the collective fabric so peers blocked in the
	// reduction unwind instead of deadlocking.
	abort := func() {
		for _, grp := range groups {
			grp.Close()
		}
	}

	outs := make([]*tensor.Tensor, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out, err := runWorker(cfg, res, storeA, storeB, shared, w)
			if err != nil {
				errCh <- fmt.Errorf("worker %d: %w", w, err)
				abort()
				return
			}
			outs[w] = out
		}(w)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	// Every worker holds the identical reduced C; reshape worker 0's copy.
	c, err := outs[0].Reshape(cfg.N, cfg.N)
	if err != nil {
		return nil, err
	}
	return &RealResult{
		Seconds: elapsed,
		Gflops:  core.Gflops(core.MatMulFlops(cfg.N), elapsed),
		C:       c,
	}, nil
}

// runWorker builds the worker's map graph once, feeds it tile pairs from
// the worker's dataset shard while accumulating products into a local
// partial of C, then runs the reduce graph: ReduceScatter sums the partials
// across workers leaving this rank one (generally uneven) segment, and
// AllGatherV reassembles the full matrix on every rank.
func runWorker(cfg Config, res *session.Resources, storeA, storeB *core.TileStore,
	shared dataset.Dataset, w int) (*tensor.Tensor, error) {
	g := graph.New()
	phA := g.Placeholder("a", tensor.Float32, tensor.Shape{cfg.Tile, cfg.Tile})
	phB := g.Placeholder("b", tensor.Float32, tensor.Shape{cfg.Tile, cfg.Tile})
	var mm *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		mm = g.AddNamedOp("mm", "MatMul", nil, phA, phB)
	})
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return nil, err
	}

	partial := make([]float32, cfg.N*cfg.N)
	tpd := cfg.TilesPerDim()
	it := dataset.Prefetch(dataset.Shard(shared, cfg.Workers, w), 2).Iterator()
	for {
		elem, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		idx := elem[0].I64()
		task := Task{I: int(idx[0]), K: int(idx[1]), J: int(idx[2])}
		tileA, err := storeA.LoadTile(task.I, task.K)
		if err != nil {
			return nil, err
		}
		tileB, err := storeB.LoadTile(task.K, task.J)
		if err != nil {
			return nil, err
		}
		out, err := sess.Run(map[string]*tensor.Tensor{"a": tileA, "b": tileB},
			[]string{mm.Name()}, nil)
		if err != nil {
			return nil, err
		}
		// Accumulate the product into this worker's partial at its target
		// block — the work the reducer tasks used to serialise.
		ti, tj := task.Target(tpd)/tpd, task.Target(tpd)%tpd
		src := out[0].F32()
		for row := 0; row < cfg.Tile; row++ {
			dst := partial[(ti*cfg.Tile+row)*cfg.N+tj*cfg.Tile:]
			gemm.Add32(dst[:cfg.Tile], src[row*cfg.Tile:(row+1)*cfg.Tile])
		}
	}

	rg := graph.New()
	ph := rg.Placeholder("partial", tensor.Float32, tensor.Shape{cfg.N * cfg.N})
	rs := rg.AddNamedOp("rs", "ReduceScatter", graph.Attrs{"group": collGroup(w), "key": "c_rs"}, ph)
	ag := rg.AddNamedOp("ag", "AllGatherV", graph.Attrs{"group": collGroup(w), "key": "c_ag"}, rs)
	rsess, err := session.New(rg, res, session.Options{})
	if err != nil {
		return nil, err
	}
	out, err := rsess.Run(map[string]*tensor.Tensor{
		"partial": tensor.FromF32(tensor.Shape{cfg.N * cfg.N}, partial),
	}, []string{ag.Name()}, nil)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}
