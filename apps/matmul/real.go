package matmul

import (
	"fmt"
	"io"
	"sync"
	"time"

	"tfhpc/internal/core"
	"tfhpc/internal/dataset"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealResult is the outcome of an actual in-process run.
type RealResult struct {
	Seconds float64
	Gflops  float64
	// C is the assembled product matrix.
	C *tensor.Tensor
}

// RunReal executes the full pipeline with real numerics: pre-processes A
// and B into .npy tiles under dir, streams the shared task list through
// worker sessions (one graph per worker: two tile placeholders → MatMul →
// QueueEnqueue), and accumulates in reducer goroutines that drain their
// queues through dequeue graphs. Timing covers the map-reduce phase only,
// matching the paper (pre-processing is excluded).
func RunReal(dir string, cfg Config, a, b *tensor.Tensor) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	storeA, err := core.SaveMatrixTiles(dir, "A", a, cfg.Tile)
	if err != nil {
		return nil, err
	}
	storeB, err := core.SaveMatrixTiles(dir, "B", b, cfg.Tile)
	if err != nil {
		return nil, err
	}
	tpd := cfg.TilesPerDim()

	// Shared resources: one registry hosts the reducer queues, as if they
	// lived on the reducer tasks.
	res := session.NewResources()
	for r := 0; r < cfg.Reducers; r++ {
		res.Queues.Get(queueName(r), 16)
	}

	// The shared dataset of tasks, sharded per worker.
	tasks := cfg.Tasks()
	elems := make([]dataset.Element, len(tasks))
	for i, t := range tasks {
		elems[i] = dataset.Element{tensor.FromI64(tensor.Shape{3}, []int64{int64(t.I), int64(t.K), int64(t.J)})}
	}
	shared := dataset.FromElements(elems...)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers+cfg.Reducers)
	// On any failure, close the queues so blocked peers unwind instead of
	// deadlocking.
	abort := func() {
		for r := 0; r < cfg.Reducers; r++ {
			res.Queues.Get(queueName(r), 16).Close()
		}
	}

	// Workers: load tiles, multiply, push (target, product) to the right
	// reducer queue through an enqueue graph.
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runWorker(cfg, res, storeA, storeB, shared, w); err != nil {
				errCh <- fmt.Errorf("worker %d: %w", w, err)
				abort()
			}
		}(w)
	}

	// Reducers: accumulate products into their share of the output tiles.
	acc := make([]map[int]*tensor.Tensor, cfg.Reducers)
	expected := make([]int, cfg.Reducers)
	for _, t := range tasks {
		expected[t.Reducer(cfg)]++
	}
	for r := 0; r < cfg.Reducers; r++ {
		acc[r] = make(map[int]*tensor.Tensor)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			if err := runReducer(cfg, res, r, expected[r], acc[r]); err != nil {
				errCh <- fmt.Errorf("reducer %d: %w", r, err)
				abort()
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	elapsed := time.Since(start).Seconds()

	// Assemble C from the reducers' tiles.
	c := tensor.New(tensor.Float32, cfg.N, cfg.N)
	for r := range acc {
		for target, tile := range acc[r] {
			ti, tj := target/tpd, target%tpd
			src, dst := tile.F32(), c.F32()
			for row := 0; row < cfg.Tile; row++ {
				copy(dst[(ti*cfg.Tile+row)*cfg.N+tj*cfg.Tile:(ti*cfg.Tile+row)*cfg.N+tj*cfg.Tile+cfg.Tile],
					src[row*cfg.Tile:(row+1)*cfg.Tile])
			}
		}
	}
	return &RealResult{
		Seconds: elapsed,
		Gflops:  core.Gflops(core.MatMulFlops(cfg.N), elapsed),
		C:       c,
	}, nil
}

func queueName(r int) string { return fmt.Sprintf("reduce_%d", r) }

// runWorker builds the worker graph once and feeds it tile pairs from the
// worker's dataset shard.
func runWorker(cfg Config, res *session.Resources, storeA, storeB *core.TileStore,
	shared dataset.Dataset, w int) error {
	g := graph.New()
	phA := g.Placeholder("a", tensor.Float32, tensor.Shape{cfg.Tile, cfg.Tile})
	phB := g.Placeholder("b", tensor.Float32, tensor.Shape{cfg.Tile, cfg.Tile})
	phT := g.Placeholder("target", tensor.Int64, nil)
	var mm *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		mm = g.AddNamedOp("mm", "MatMul", nil, phA, phB)
	})
	enq := make([]*graph.Node, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		enq[r] = g.AddNamedOp(fmt.Sprintf("enq_%d", r), "QueueEnqueue",
			graph.Attrs{"queue": queueName(r), "capacity": 16}, phT, mm)
	}
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return err
	}

	it := dataset.Prefetch(dataset.Shard(shared, cfg.Workers, w), 2).Iterator()
	for {
		elem, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		idx := elem[0].I64()
		task := Task{I: int(idx[0]), K: int(idx[1]), J: int(idx[2])}
		tileA, err := storeA.LoadTile(task.I, task.K)
		if err != nil {
			return err
		}
		tileB, err := storeB.LoadTile(task.K, task.J)
		if err != nil {
			return err
		}
		r := task.Reducer(cfg)
		_, err = sess.Run(map[string]*tensor.Tensor{
			"a":      tileA,
			"b":      tileB,
			"target": tensor.ScalarI64(int64(task.Target(cfg.TilesPerDim()))),
		}, nil, []string{enq[r].Name()})
		if err != nil {
			return err
		}
	}
}

// runReducer drains its queue through a dequeue graph and accumulates
// products locally, like the paper's reducer accumulating into numpy
// arrays.
func runReducer(cfg Config, res *session.Resources, r, expected int,
	acc map[int]*tensor.Tensor) error {
	g := graph.New()
	deq := g.AddNamedOp("deq", "QueueDequeue", graph.Attrs{"queue": queueName(r), "capacity": 16})
	tile := g.AddNamedOp("tile", "DequeueComponent", graph.Attrs{"index": 1}, deq)
	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return err
	}
	for n := 0; n < expected; n++ {
		out, err := sess.Run(nil, []string{deq.Name(), tile.Name()}, nil)
		if err != nil {
			return err
		}
		target := int(out[0].ScalarInt())
		product := out[1]
		if cur, ok := acc[target]; ok {
			gemm.Add32(cur.F32(), product.F32())
		} else {
			acc[target] = product.Clone()
		}
	}
	return nil
}
