package cg

import (
	"testing"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/tensor"
)

// TestClusterSolveMatchesInProcess solves the same system over an in-process
// TCP cluster (4 task servers, ring collectives between them) and in plain
// real mode; both must converge to the same solution.
func TestClusterSolveMatchesInProcess(t *testing.T) {
	cfg := Config{N: 64, Workers: 4, MaxIters: 150, Tol: 1e-9}
	a := SPDMatrix(cfg.N, 21)
	b := tensor.RandomUniform(tensor.Float64, 22, cfg.N)

	lc, err := cluster.StartLocal(map[string]int{"worker": cfg.Workers})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()

	dist, err := RunCluster(cfg, a, b, peers, ClusterOptions{HealthWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	local, err := RunReal(cfg, a, b, RealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(t, a, dist.X, b); rn > 1e-7 {
		t.Fatalf("cluster solve residual ‖b - Ax‖ = %g after %d iters", rn, dist.Iters)
	}
	if !dist.X.ApproxEqual(local.X, 1e-8) {
		t.Fatal("cluster and in-process solutions disagree")
	}
}

// TestClusterRejectsSmallJob: asking for more workers than the job has tasks
// must fail fast, not hang.
func TestClusterRejectsSmallJob(t *testing.T) {
	lc, err := cluster.StartLocal(map[string]int{"worker": 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	peers := cluster.NewPeers(lc.Spec())
	defer peers.Close()
	cfg := Config{N: 64, Workers: 4, MaxIters: 10}
	a := SPDMatrix(cfg.N, 23)
	b := tensor.RandomUniform(tensor.Float64, 24, cfg.N)
	if _, err := RunCluster(cfg, a, b, peers, ClusterOptions{}); err == nil {
		t.Fatal("4-worker solve on a 2-task job should fail")
	}
}
