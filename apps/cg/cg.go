// Package cg implements the paper's distributed Conjugate Gradient solver:
// the SPD matrix is split into row blocks owned by workers (loaded once and
// reused every iteration, for data locality), the matrix-vector product and
// dot products are computed per block, and every synchronisation — the
// allgather of the search direction and both scalar reductions — is a ring
// collective in the worker graph (internal/collective, the Horovod-style
// engine Section VIII of the paper points to, replacing the queue-based
// reduction services of Fig. 5). The same graphs drive the in-process real
// mode (loopback ring) and the cluster mode over running tfserver tasks
// (TCP ring between the tasks). Arithmetic is double precision, as in the
// paper, and the solver supports checkpoint-restart.
package cg

import (
	"fmt"

	"tfhpc/internal/tensor"
)

// Config describes one CG problem instance.
type Config struct {
	N       int // matrix dimension
	Workers int // row-block owners (one GPU each in the paper)
	// MaxIters bounds the iteration count; the paper's experiments run 500.
	MaxIters int
	// Tol stops early when ‖r‖ < Tol (0 disables, running MaxIters always).
	Tol float64
}

// Validate checks the decomposition.
func (c Config) Validate() error {
	if c.N <= 0 || c.Workers <= 0 {
		return fmt.Errorf("cg: need positive N and workers")
	}
	if c.N%c.Workers != 0 {
		return fmt.Errorf("cg: workers %d must divide N %d", c.Workers, c.N)
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("cg: need positive MaxIters")
	}
	return nil
}

// RowsPerWorker returns the block height.
func (c Config) RowsPerWorker() int { return c.N / c.Workers }

// SPDMatrix builds a random symmetric positive-definite test matrix:
// A = R + Rᵀ + 2N·I with R uniform in [0,1), which is strictly diagonally
// dominant and hence SPD.
func SPDMatrix(n int, seed uint64) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	a := tensor.New(tensor.Float64, n, n)
	d := a.F64()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Float64()
			d[i*n+j] += v
			if i != j {
				d[j*n+i] += v
			}
		}
		d[i*n+i] += 2 * float64(n)
	}
	return a
}
