package cg

import (
	"fmt"

	"tfhpc/internal/core"
	"tfhpc/internal/hw"
)

// SimConfig describes one point of Fig. 10 on the virtual platform.
type SimConfig struct {
	Cluster  *hw.Cluster
	NodeType *hw.NodeType
	N        int
	GPUs     int
	Iters    int // the paper runs 500
}

// SimResult is the virtual-time outcome.
type SimResult struct {
	Seconds   float64
	Gflops    float64
	PerIter   float64 // seconds per iteration
	MVPerIter float64 // matvec share per iteration
}

// fixedOverhead is the per-iteration runtime overhead (session dispatch,
// queue round trips of the two scalar reductions and the allgather, kernel
// launches) calibrated per platform against the paper's measured scaling
// ratios (Section VI.C): Kebnekaise's four co-located instances pay more
// than Tegner's two.
func fixedOverhead(c *hw.Cluster, nt *hw.NodeType) float64 {
	switch {
	case c == hw.Tegner:
		return 3.5e-3
	case nt.GPU.Name == "V100":
		return 4.3e-3
	default: // Kebnekaise K80
		return 6.6e-3
	}
}

// RunSim evaluates the per-iteration cost model:
//
//	t_iter = matvec(N/p rows)            — memory-bandwidth bound on-GPU
//	       + 5 vector ops on N/p slices  — streaming at device bandwidth
//	       + allgather of p slices       — through the reducer's NIC
//	       + 3 reductions × queue ops    — latency × participating workers
//	       + fixed per-iteration runtime overhead (calibrated)
//
// and reports Gflop/s with the paper's 500·2·N² flop estimate.
func RunSim(sc SimConfig) (*SimResult, error) {
	if sc.GPUs <= 0 || sc.N <= 0 {
		return nil, fmt.Errorf("cg: need positive N and GPUs")
	}
	if sc.Iters <= 0 {
		sc.Iters = 500
	}
	gpu := sc.NodeType.GPU
	rows := sc.N / sc.GPUs
	// Each worker holds its block of A in double precision. The 1.55 factor
	// covers the runtime's allocator workspace and send/recv staging buffers
	// on top of the block itself; with it, 65536² fits Kebnekaise K80
	// engines only from eight GPUs up — exactly the gap in the paper's
	// Fig. 10.
	blockBytes := int64(float64(rows) * float64(sc.N) * 8 * 1.55)
	if blockBytes > gpu.MemBytes {
		return nil, fmt.Errorf("cg: N=%d with %d GPUs needs %.1f GB per %s (%d GB available)",
			sc.N, sc.GPUs, float64(blockBytes)/1e9, gpu.Name, gpu.MemBytes>>30)
	}

	mv := gpu.MatVecTime(rows, sc.N, true)
	vecOps := 5 * gpu.VectorOpTime(int64(rows)*8)
	wireEff := sc.Cluster.RDMAEff * sc.Cluster.Wire.BW
	gatherT := float64(sc.GPUs) * (float64(sc.N)*8/wireEff + sc.Cluster.Wire.Latency)
	reduceT := 3 * 2 * float64(sc.GPUs) * 20e-6

	perIter := mv + vecOps + gatherT + reduceT + fixedOverhead(sc.Cluster, sc.NodeType)
	total := float64(sc.Iters) * perIter
	return &SimResult{
		Seconds:   total,
		Gflops:    core.Gflops(core.CGFlops(sc.N, sc.Iters), total),
		PerIter:   perIter,
		MVPerIter: mv,
	}, nil
}

// Fig10Curve is one platform's strong-scaling series at one problem size.
type Fig10Curve struct {
	Platform string
	N        int
	Points   []core.ScalingPoint
	// Skipped lists GPU counts omitted with the reason (e.g. insufficient
	// memory), mirroring the gaps in the paper's figure.
	Skipped map[int]string
}

// Fig10 regenerates the figure: CG on Tegner K80, Kebnekaise K80 and
// Kebnekaise V100 at the paper's problem sizes and GPU counts.
func Fig10() ([]Fig10Curve, error) {
	type platform struct {
		label   string
		cluster *hw.Cluster
		node    string
		sizes   []int
		gpus    []int
	}
	platforms := []platform{
		{"Tegner K80", hw.Tegner, "k80", []int{16384, 32768}, []int{2, 4, 8}},
		{"Kebnekaise K80", hw.Kebnekaise, "k80", []int{16384, 32768, 65536}, []int{2, 4, 8, 16}},
		{"Kebnekaise V100", hw.Kebnekaise, "v100", []int{16384, 32768}, []int{2, 4, 8}},
	}
	var curves []Fig10Curve
	for _, pf := range platforms {
		nt := pf.cluster.NodeTypes[pf.node]
		for _, n := range pf.sizes {
			curve := Fig10Curve{Platform: pf.label, N: n, Skipped: map[int]string{}}
			for _, g := range pf.gpus {
				res, err := RunSim(SimConfig{
					Cluster: pf.cluster, NodeType: nt, N: n, GPUs: g, Iters: 500,
				})
				if err != nil {
					// Matches the paper: 65536² does not fit small GPU
					// counts, so those bars are absent.
					curve.Skipped[g] = err.Error()
					continue
				}
				curve.Points = append(curve.Points, core.ScalingPoint{GPUs: g, Gflops: res.Gflops})
			}
			curves = append(curves, curve)
		}
	}
	return curves, nil
}
