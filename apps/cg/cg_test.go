package cg

import (
	"math"
	"path/filepath"
	"testing"

	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/tensor"
)

func residualNorm(t *testing.T, a, x, b *tensor.Tensor) float64 {
	t.Helper()
	ax, err := ops.Run("MatVec", &ops.Context{}, []*tensor.Tensor{a, x})
	if err != nil {
		t.Fatal(err)
	}
	var rr float64
	for i, v := range ax.F64() {
		d := b.F64()[i] - v
		rr += d * d
	}
	return math.Sqrt(rr)
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{N: 64, Workers: 4, MaxIters: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{N: 64, Workers: 5, MaxIters: 10},
		{N: 0, Workers: 1, MaxIters: 10},
		{N: 64, Workers: 1, MaxIters: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("%+v should be invalid", bad)
		}
	}
}

func TestSPDMatrixIsSymmetricDominant(t *testing.T) {
	n := 32
	a := SPDMatrix(n, 1)
	d := a.F64()
	for i := 0; i < n; i++ {
		var off float64
		for j := 0; j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
			if i != j {
				off += math.Abs(d[i*n+j])
			}
		}
		if d[i*n+i] <= off {
			t.Fatalf("row %d not diagonally dominant", i)
		}
	}
}

func TestSolvesSPDSystem(t *testing.T) {
	cfg := Config{N: 128, Workers: 4, MaxIters: 200, Tol: 1e-9}
	a := SPDMatrix(cfg.N, 7)
	b := tensor.RandomUniform(tensor.Float64, 8, cfg.N)
	res, err := RunReal(cfg, a, b, RealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(t, a, res.X, b); rn > 1e-7 {
		t.Fatalf("‖b - Ax‖ = %g after %d iters", rn, res.Iters)
	}
	if res.Iters >= cfg.MaxIters {
		t.Fatalf("did not converge early: %d iters", res.Iters)
	}
	if res.Gflops <= 0 {
		t.Fatal("no performance reported")
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	// The distributed answer must not depend on the decomposition.
	cfg1 := Config{N: 64, Workers: 1, MaxIters: 100, Tol: 1e-10}
	cfg4 := Config{N: 64, Workers: 4, MaxIters: 100, Tol: 1e-10}
	a := SPDMatrix(64, 3)
	b := tensor.RandomUniform(tensor.Float64, 4, 64)
	r1, err := RunReal(cfg1, a, b, RealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReal(cfg4, a, b, RealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.X.ApproxEqual(r4.X, 1e-6) {
		t.Fatal("1-worker and 4-worker solutions disagree")
	}
}

func TestResidualDecreasesMonotonically(t *testing.T) {
	// With a fixed iteration budget and no tolerance, the reported residual
	// after k iterations should shrink as k grows.
	a := SPDMatrix(64, 9)
	b := tensor.RandomUniform(tensor.Float64, 10, 64)
	var prev float64 = math.Inf(1)
	for _, iters := range []int{2, 5, 10, 20} {
		res, err := RunReal(Config{N: 64, Workers: 2, MaxIters: iters}, a, b, RealOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualNorm >= prev {
			t.Fatalf("residual did not decrease: %g after %d iters (prev %g)",
				res.ResidualNorm, iters, prev)
		}
		prev = res.ResidualNorm
	}
}

func TestCheckpointRestartMatchesContinuousRun(t *testing.T) {
	cfg := Config{N: 64, Workers: 2, MaxIters: 20}
	a := SPDMatrix(cfg.N, 11)
	b := tensor.RandomUniform(tensor.Float64, 12, cfg.N)

	// Continuous 20-iteration run.
	full, err := RunReal(cfg, a, b, RealOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 10 iterations, checkpoint, then resume for the remaining 10.
	ckPath := filepath.Join(t.TempDir(), "cg.ckpt")
	half := cfg
	half.MaxIters = 10
	if _, err := RunReal(half, a, b, RealOptions{CheckpointPath: ckPath}); err != nil {
		t.Fatal(err)
	}
	resumed, err := RunReal(cfg, a, b, RealOptions{CheckpointPath: ckPath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iters != 20 {
		t.Fatalf("resumed run ended at iter %d, want 20", resumed.Iters)
	}
	if !full.X.ApproxEqual(resumed.X, 1e-9) {
		t.Fatal("restart diverged from the continuous run")
	}
}

func TestCheckpointGraphMismatchRejected(t *testing.T) {
	cfg := Config{N: 64, Workers: 2, MaxIters: 5}
	a := SPDMatrix(cfg.N, 13)
	b := tensor.RandomUniform(tensor.Float64, 14, cfg.N)
	ckPath := filepath.Join(t.TempDir(), "cg.ckpt")
	if _, err := RunReal(cfg, a, b, RealOptions{CheckpointPath: ckPath}); err != nil {
		t.Fatal(err)
	}
	other := Config{N: 64, Workers: 4, MaxIters: 5}
	if _, err := RunReal(other, a, b, RealOptions{CheckpointPath: ckPath, Resume: true}); err == nil {
		t.Fatal("resuming with a different decomposition should fail")
	}
}

func TestSimMemoryLimits(t *testing.T) {
	// 65536² fp64 (34 GB) cannot fit 2 K80 engines (12 GB each) — the gap
	// in the paper's Fig. 10.
	_, err := RunSim(SimConfig{
		Cluster: hw.Kebnekaise, NodeType: hw.Kebnekaise.NodeTypes["k80"],
		N: 65536, GPUs: 2, Iters: 500,
	})
	if err == nil {
		t.Fatal("65k on 2 K80s should be out of memory")
	}
	// It fits at 8 GPUs, as the paper reports.
	if _, err := RunSim(SimConfig{
		Cluster: hw.Kebnekaise, NodeType: hw.Kebnekaise.NodeTypes["k80"],
		N: 65536, GPUs: 8, Iters: 500,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSimFig10Ratios(t *testing.T) {
	run := func(c *hw.Cluster, node string, n, gpus int) float64 {
		res, err := RunSim(SimConfig{Cluster: c, NodeType: c.NodeTypes[node], N: n, GPUs: gpus, Iters: 500})
		if err != nil {
			t.Fatal(err)
		}
		return res.Gflops
	}
	// Kebnekaise K80 32k: 1.6x (2->4), ~1.3x (4->8) per the paper.
	k2 := run(hw.Kebnekaise, "k80", 32768, 2)
	k4 := run(hw.Kebnekaise, "k80", 32768, 4)
	k8 := run(hw.Kebnekaise, "k80", 32768, 8)
	if r := k4 / k2; r < 1.4 || r > 1.75 {
		t.Fatalf("Kebnekaise K80 2->4 = %.2f, paper ~1.6", r)
	}
	if r := k8 / k4; r < 1.2 || r > 1.55 {
		t.Fatalf("Kebnekaise K80 4->8 = %.2f, paper ~1.3", r)
	}
	// Tegner K80 32k: ~1.74x (2->4).
	t2 := run(hw.Tegner, "k80", 32768, 2)
	t4 := run(hw.Tegner, "k80", 32768, 4)
	if r := t4 / t2; r < 1.6 || r > 1.9 {
		t.Fatalf("Tegner K80 2->4 = %.2f, paper ~1.74", r)
	}
	// V100 32k: modest 1.26x / 1.16x — the GPU is underutilised.
	v2 := run(hw.Kebnekaise, "v100", 32768, 2)
	v4 := run(hw.Kebnekaise, "v100", 32768, 4)
	v8 := run(hw.Kebnekaise, "v100", 32768, 8)
	if r := v4 / v2; r < 1.15 || r > 1.45 {
		t.Fatalf("V100 2->4 = %.2f, paper ~1.26", r)
	}
	if r := v8 / v4; r < 1.02 || r > 1.3 {
		t.Fatalf("V100 4->8 = %.2f, paper ~1.16", r)
	}
	// Eight V100s deliver over ~300 Gflop/s (paper's headline comparison).
	if v8 < 270 || v8 > 360 {
		t.Fatalf("8xV100 = %.0f Gflop/s, paper reports >300", v8)
	}
	// 16k barely scales anywhere (underutilisation).
	s2 := run(hw.Kebnekaise, "v100", 16384, 2)
	s8 := run(hw.Kebnekaise, "v100", 16384, 8)
	if r := s8 / s2; r > 1.25 {
		t.Fatalf("16k scaled %.2f on V100; paper sees little scaling", r)
	}
}

func TestFig10CurvesComplete(t *testing.T) {
	curves, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 7 {
		t.Fatalf("curve count %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points)+len(c.Skipped) == 0 {
			t.Fatalf("%s N=%d empty", c.Platform, c.N)
		}
	}
	// The 65k Kebnekaise curve must skip 2 and 4 GPUs for memory.
	for _, c := range curves {
		if c.Platform == "Kebnekaise K80" && c.N == 65536 {
			if _, ok := c.Skipped[2]; !ok {
				t.Fatal("65k should be skipped at 2 GPUs")
			}
			if _, ok := c.Skipped[4]; !ok {
				t.Fatal("65k should be skipped at 4 GPUs")
			}
			if len(c.Points) != 2 {
				t.Fatalf("65k should have 8- and 16-GPU points, got %d", len(c.Points))
			}
		}
	}
}
