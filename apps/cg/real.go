package cg

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/collective"
	"tfhpc/internal/core"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealOptions tune an actual run.
type RealOptions struct {
	// CheckpointPath, when set, saves solver state every CheckpointEvery
	// iterations (and on completion).
	CheckpointPath  string
	CheckpointEvery int
	// Resume restarts from CheckpointPath instead of initialising.
	Resume bool
}

// RealResult is the outcome of a real solve.
type RealResult struct {
	X            *tensor.Tensor // solution vector
	Iters        int
	ResidualNorm float64
	Seconds      float64
	Gflops       float64
}

// graphID identifies CG checkpoints.
func graphID(cfg Config) string { return fmt.Sprintf("cg:n%d:w%d", cfg.N, cfg.Workers) }

// collGroup names worker w's collective-group membership in a shared
// resource store (in-process runs register one membership per worker; in
// cluster runs every task registers under its own store, so the name is the
// same on all of them).
func collGroup(w int) string { return fmt.Sprintf("cg/w%d", w) }

// buildWorker constructs worker w's compute graph: the allgather of the
// search direction and the two scalar allreduces now ride collective ops in
// the graph itself (ring collectives replacing the bespoke two-queue gather
// service and central reducers of the parameter-server formulation), around
// the block matvec, local dot products and vector updates. State lives in
// variables prefixed w<w>/ so checkpoints capture the whole solver. group
// names the collective membership; a non-empty device places every node on
// that device spec (cluster runs).
func buildWorker(cfg Config, w int, group, device string) *graph.Graph {
	rows := cfg.RowsPerWorker()
	begin := w * rows
	pre := fmt.Sprintf("w%d/", w)
	g := graph.New()

	build := func() {
		alphaPH := g.Placeholder("alpha", tensor.Float64, nil)
		betaPH := g.Placeholder("beta", tensor.Float64, nil)

		aVar := g.AddNamedOp("A", "Variable", graph.Attrs{"var_name": pre + "A"})
		xVar := g.AddNamedOp("x", "Variable", graph.Attrs{"var_name": pre + "x"})
		rVar := g.AddNamedOp("r", "Variable", graph.Attrs{"var_name": pre + "r"})
		pVar := g.AddNamedOp("p", "Variable", graph.Attrs{"var_name": pre + "p"})

		// Stage 1: allgather p, then q = A·p_full on the GPU; the α
		// denominator p·q is a local dot allreduced over the ring. The
		// collective keys ("p_full", "pq_sum") are node names, identical on
		// every worker by construction.
		pFull := g.AddNamedOp("p_full", "AllGather", graph.Attrs{"group": group, "key": "p_full"}, pVar)
		var q *graph.Node
		g.WithDevice("/device:GPU:0", func() {
			q = g.AddNamedOp("q", "MatVec", nil, aVar, pFull)
		})
		g.AddNamedOp("save_q", "Assign", graph.Attrs{"var_name": pre + "q"}, q)
		pSlice := g.AddNamedOp("p_slice", "SliceRows",
			graph.Attrs{"begin": begin, "size": rows}, pFull)
		partialPQ := g.AddNamedOp("partial_pq", "Dot", nil, pSlice, q)
		g.AddNamedOp("pq_sum", "AllReduce", graph.Attrs{"group": group, "key": "pq_sum"}, partialPQ)

		// Stage 2: x += α·p ; r -= α·q ; ‖r‖² allreduced.
		qVar := g.AddNamedOp("q_read", "Variable", graph.Attrs{"var_name": pre + "q"})
		xNew := g.AddNamedOp("x_new", "Axpy", nil, alphaPH, pVar, xVar)
		g.AddNamedOp("save_x", "Assign", graph.Attrs{"var_name": pre + "x"}, xNew)
		negAlpha := g.AddNamedOp("neg_alpha", "Neg", nil, alphaPH)
		rNew := g.AddNamedOp("r_new", "Axpy", nil, negAlpha, qVar, rVar)
		saveR := g.AddNamedOp("save_r", "Assign", graph.Attrs{"var_name": pre + "r"}, rNew)
		prr := g.AddNamedOp("partial_rr", "Dot", nil, rNew, rNew)
		prr.AddControlDep(saveR)
		g.AddNamedOp("rr_sum", "AllReduce", graph.Attrs{"group": group, "key": "rr_sum"}, prr)

		// Stage 3: p = r + β·p.
		pNew := g.AddNamedOp("p_new", "Axpy", nil, betaPH, pVar, rVar)
		g.AddNamedOp("save_p", "Assign", graph.Attrs{"var_name": pre + "p"}, pNew)
	}
	if device != "" {
		g.WithDevice(device, build)
	} else {
		build()
	}
	return g
}

// iterOut is one worker driver's outcome.
type iterOut struct {
	rr   float64
	err  error
	iter int
}

// driveWorker runs worker w's iteration loop against its session: per
// iteration one Run per stage, with α and β computed from the allreduced
// scalars exactly like every other worker (collectives return identical
// bytes on all ranks, so the replicas never diverge). checkpointEach, when
// non-nil, runs on EVERY worker at the end of each iteration — the
// checkpoint path uses it to barrier all workers around the capture, since
// the last per-iteration collective (rr_sum) does not order the stage-3
// variable writes that follow it.
func driveWorker(cfg Config, sess *session.Session, w, startIter int, rr float64,
	checkpointEach func(iter int, rr float64) error) iterOut {
	localRR := rr
	out := iterOut{rr: rr, iter: startIter}
	for iter := startIter; iter < cfg.MaxIters; iter++ {
		fetched, err := sess.Run(nil, []string{"pq_sum"}, []string{"save_q"})
		if err != nil {
			return iterOut{err: err, iter: iter}
		}
		alpha := localRR / fetched[0].ScalarFloat()

		fetched, err = sess.Run(map[string]*tensor.Tensor{
			"alpha": tensor.ScalarF64(alpha),
		}, []string{"rr_sum"}, []string{"save_x", "save_r"})
		if err != nil {
			return iterOut{err: err, iter: iter}
		}
		rrNew := fetched[0].ScalarFloat()
		beta := rrNew / localRR
		localRR = rrNew

		if _, err := sess.Run(map[string]*tensor.Tensor{
			"beta": tensor.ScalarF64(beta),
		}, nil, []string{"save_p"}); err != nil {
			return iterOut{err: err, iter: iter}
		}
		out = iterOut{rr: localRR, iter: iter + 1}

		if checkpointEach != nil {
			if err := checkpointEach(iter+1, localRR); err != nil {
				return iterOut{err: err, iter: iter + 1}
			}
		}
		if cfg.Tol > 0 && math.Sqrt(localRR) < cfg.Tol {
			return out
		}
	}
	return out
}

// RunReal solves A·x = b with the distributed data-driven CG formulation,
// with real numerics on the host: one driver goroutine per worker, ring
// collectives over an in-process loopback fabric. A must be SPD.
func RunReal(cfg Config, a, b *tensor.Tensor, opts RealOptions) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Rank() != 2 || a.Shape()[0] != cfg.N || a.Shape()[1] != cfg.N {
		return nil, fmt.Errorf("cg: matrix shape %v does not match N=%d", a.Shape(), cfg.N)
	}
	rows := cfg.RowsPerWorker()
	res := session.NewResources()

	// One ring membership per worker over a shared loopback fabric.
	groups := collective.NewLoopbackGroups(cfg.Workers, collective.Options{})
	for w, grp := range groups {
		res.Colls.Register(collGroup(w), grp)
	}
	defer res.Colls.CloseAll()

	sessions := make([]*session.Session, cfg.Workers)
	for w := range sessions {
		sess, err := session.New(buildWorker(cfg, w, collGroup(w), ""), res, session.Options{})
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}

	startIter := 0
	rr := 0.0
	if opts.Resume {
		ck, err := checkpoint.Load(opts.CheckpointPath)
		if err != nil {
			return nil, fmt.Errorf("cg: resume: %w", err)
		}
		if ck.GraphID != graphID(cfg) {
			return nil, fmt.Errorf("cg: checkpoint is for %q, want %q", ck.GraphID, graphID(cfg))
		}
		if err := ck.Apply(res.Vars); err != nil {
			return nil, err
		}
		startIter = int(ck.Step)
		rrT, ok := ck.Vars["__rr"]
		if !ok {
			return nil, fmt.Errorf("cg: checkpoint missing residual state")
		}
		rr = rrT.ScalarFloat()
	} else {
		// Initialise: x=0, r=b, p=r per block; A blocks loaded once.
		for w := 0; w < cfg.Workers; w++ {
			pre := fmt.Sprintf("w%d/", w)
			blockRows := a.F64()[w*rows*cfg.N : (w+1)*rows*cfg.N]
			block := tensor.FromF64(tensor.Shape{rows, cfg.N}, blockRows)
			if err := res.Vars.Get(pre + "A").Assign(block); err != nil {
				return nil, err
			}
			bSlice := tensor.FromF64(tensor.Shape{rows}, b.F64()[w*rows:(w+1)*rows])
			res.Vars.Get(pre + "x").Assign(tensor.New(tensor.Float64, rows))
			res.Vars.Get(pre + "r").Assign(bSlice)
			res.Vars.Get(pre + "p").Assign(bSlice)
		}
		rr = gemm.Dot64(b.F64(), b.F64())
	}

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]iterOut, cfg.Workers)
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var ckpt func(int, float64) error
			if opts.CheckpointPath != "" && opts.CheckpointEvery > 0 {
				// Every worker enters a barrier pair around the capture: the
				// first barrier orders all stage-3 variable writes before
				// the snapshot, the second keeps the next iteration from
				// mutating state until worker 0 finishes writing.
				grp := groups[w]
				ckpt = func(iter int, rr float64) error {
					if iter%opts.CheckpointEvery != 0 {
						return nil
					}
					if err := grp.Barrier("ckpt_enter"); err != nil {
						return err
					}
					var saveErr error
					if w == 0 {
						saveErr = saveCheckpoint(cfg, res, opts.CheckpointPath, iter, rr)
					}
					if err := grp.Barrier("ckpt_exit"); err != nil {
						return err
					}
					return saveErr
				}
			}
			results[w] = driveWorker(cfg, sessions[w], w, startIter, rr, ckpt)
			if results[w].err != nil {
				// Poison this worker's ring membership so peers blocked in a
				// collective cascade the failure instead of hanging.
				groups[w].Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	finalRR := rr
	itersRun := startIter
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		finalRR = r.rr
		itersRun = r.iter
	}

	// Assemble x.
	x := tensor.New(tensor.Float64, cfg.N)
	for w := 0; w < cfg.Workers; w++ {
		xw, err := res.Vars.Get(fmt.Sprintf("w%d/x", w)).Read()
		if err != nil {
			return nil, err
		}
		copy(x.F64()[w*rows:(w+1)*rows], xw.F64())
	}
	if opts.CheckpointPath != "" {
		if err := saveCheckpoint(cfg, res, opts.CheckpointPath, itersRun, finalRR); err != nil {
			return nil, err
		}
	}
	iters := itersRun - startIter
	return &RealResult{
		X:            x,
		Iters:        itersRun,
		ResidualNorm: math.Sqrt(finalRR),
		Seconds:      elapsed,
		Gflops:       core.Gflops(core.CGFlops(cfg.N, iters), elapsed),
	}, nil
}

func saveCheckpoint(cfg Config, res *session.Resources, path string, step int, rr float64) error {
	ck := checkpoint.Capture(graphID(cfg), int64(step), res.Vars)
	ck.Vars["__rr"] = tensor.ScalarF64(rr)
	return ck.Save(path)
}
