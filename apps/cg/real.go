package cg

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tfhpc/internal/checkpoint"
	"tfhpc/internal/core"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/queue"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// RealOptions tune an actual run.
type RealOptions struct {
	// CheckpointPath, when set, saves solver state every CheckpointEvery
	// iterations (and on completion).
	CheckpointPath  string
	CheckpointEvery int
	// Resume restarts from CheckpointPath instead of initialising.
	Resume bool
}

// RealResult is the outcome of a real solve.
type RealResult struct {
	X            *tensor.Tensor // solution vector
	Iters        int
	ResidualNorm float64
	Seconds      float64
	Gflops       float64
}

// graphID identifies CG checkpoints.
func graphID(cfg Config) string { return fmt.Sprintf("cg:n%d:w%d", cfg.N, cfg.Workers) }

// gatherService assembles worker slices into the full search direction and
// hands every worker a copy — the allgather of the data-driven formulation,
// built from two FIFO queues like Fig. 5.
type gatherService struct {
	workers int
	rows    int
	in      *queue.FIFO
	out     *queue.FIFO
	done    chan struct{}
}

func newGatherService(workers, rows, n int) *gatherService {
	g := &gatherService{
		workers: workers,
		rows:    rows,
		in:      queue.New(0),
		out:     queue.New(0),
		done:    make(chan struct{}),
	}
	go func() {
		defer close(g.done)
		for {
			full := tensor.New(tensor.Float64, n)
			for i := 0; i < workers; i++ {
				item, err := g.in.Dequeue()
				if err != nil {
					g.out.Close()
					return
				}
				w := int(item[0].ScalarInt())
				copy(full.F64()[w*rows:(w+1)*rows], item[1].F64())
			}
			for i := 0; i < workers; i++ {
				if g.out.Enqueue(queue.Item{full}) != nil {
					return
				}
			}
		}
	}()
	return g
}

func (g *gatherService) gather(w int, slice *tensor.Tensor) (*tensor.Tensor, error) {
	if err := g.in.Enqueue(queue.Item{tensor.ScalarI64(int64(w)), slice}); err != nil {
		return nil, err
	}
	item, err := g.out.Dequeue()
	if err != nil {
		return nil, err
	}
	return item[0], nil
}

func (g *gatherService) close() {
	g.in.Close()
	<-g.done
}

// workerState is one worker's graph and handles.
type workerState struct {
	sess  *session.Session
	begin int
	rows  int
}

// buildWorker constructs worker w's compute graph: the block matvec, the
// two local dot products and the vector updates, with state in variables
// prefixed w<w>/ so checkpoints capture the whole solver.
func buildWorker(cfg Config, res *session.Resources, w int) (*workerState, error) {
	rows := cfg.RowsPerWorker()
	begin := w * rows
	pre := fmt.Sprintf("w%d/", w)
	g := graph.New()

	pFull := g.Placeholder("p_full", tensor.Float64, tensor.Shape{cfg.N})
	alphaPH := g.Placeholder("alpha", tensor.Float64, nil)
	betaPH := g.Placeholder("beta", tensor.Float64, nil)

	aVar := g.AddNamedOp("A", "Variable", graph.Attrs{"var_name": pre + "A"})
	xVar := g.AddNamedOp("x", "Variable", graph.Attrs{"var_name": pre + "x"})
	rVar := g.AddNamedOp("r", "Variable", graph.Attrs{"var_name": pre + "r"})
	pVar := g.AddNamedOp("p", "Variable", graph.Attrs{"var_name": pre + "p"})

	// Stage 1: q = A·p_full on the GPU; partial α denominator = p_w·q.
	var q *graph.Node
	g.WithDevice("/device:GPU:0", func() {
		q = g.AddNamedOp("q", "MatVec", nil, aVar, pFull)
	})
	g.AddNamedOp("save_q", "Assign", graph.Attrs{"var_name": pre + "q"}, q)
	pSlice := g.AddNamedOp("p_slice", "SliceRows",
		graph.Attrs{"begin": begin, "size": rows}, pFull)
	g.AddNamedOp("partial_pq", "Dot", nil, pSlice, q)

	// Stage 2: x += α·p ; r -= α·q ; partial ‖r‖² = r·r.
	qVar := g.AddNamedOp("q_read", "Variable", graph.Attrs{"var_name": pre + "q"})
	xNew := g.AddNamedOp("x_new", "Axpy", nil, alphaPH, pVar, xVar)
	g.AddNamedOp("save_x", "Assign", graph.Attrs{"var_name": pre + "x"}, xNew)
	negAlpha := g.AddNamedOp("neg_alpha", "Neg", nil, alphaPH)
	rNew := g.AddNamedOp("r_new", "Axpy", nil, negAlpha, qVar, rVar)
	saveR := g.AddNamedOp("save_r", "Assign", graph.Attrs{"var_name": pre + "r"}, rNew)
	prr := g.AddNamedOp("partial_rr", "Dot", nil, rNew, rNew)
	prr.AddControlDep(saveR)

	// Stage 3: p = r + β·p.
	pNew := g.AddNamedOp("p_new", "Axpy", nil, betaPH, pVar, rVar)
	g.AddNamedOp("save_p", "Assign", graph.Attrs{"var_name": pre + "p"}, pNew)

	sess, err := session.New(g, res, session.Options{})
	if err != nil {
		return nil, err
	}
	return &workerState{sess: sess, begin: begin, rows: rows}, nil
}

// RunReal solves A·x = b with the distributed data-driven CG formulation,
// with real numerics on the host. A must be SPD.
func RunReal(cfg Config, a, b *tensor.Tensor, opts RealOptions) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Rank() != 2 || a.Shape()[0] != cfg.N || a.Shape()[1] != cfg.N {
		return nil, fmt.Errorf("cg: matrix shape %v does not match N=%d", a.Shape(), cfg.N)
	}
	rows := cfg.RowsPerWorker()
	res := session.NewResources()

	workers := make([]*workerState, cfg.Workers)
	for w := range workers {
		ws, err := buildWorker(cfg, res, w)
		if err != nil {
			return nil, err
		}
		workers[w] = ws
	}

	startIter := 0
	rr := 0.0
	if opts.Resume {
		ck, err := checkpoint.Load(opts.CheckpointPath)
		if err != nil {
			return nil, fmt.Errorf("cg: resume: %w", err)
		}
		if ck.GraphID != graphID(cfg) {
			return nil, fmt.Errorf("cg: checkpoint is for %q, want %q", ck.GraphID, graphID(cfg))
		}
		if err := ck.Apply(res.Vars); err != nil {
			return nil, err
		}
		startIter = int(ck.Step)
		rrT, ok := ck.Vars["__rr"]
		if !ok {
			return nil, fmt.Errorf("cg: checkpoint missing residual state")
		}
		rr = rrT.ScalarFloat()
	} else {
		// Initialise: x=0, r=b, p=r per block; A blocks loaded once.
		for w := range workers {
			pre := fmt.Sprintf("w%d/", w)
			blockRows := a.F64()[w*rows*cfg.N : (w+1)*rows*cfg.N]
			block := tensor.FromF64(tensor.Shape{rows, cfg.N}, blockRows)
			if err := res.Vars.Get(pre + "A").Assign(block); err != nil {
				return nil, err
			}
			bSlice := tensor.FromF64(tensor.Shape{rows}, b.F64()[w*rows:(w+1)*rows])
			res.Vars.Get(pre + "x").Assign(tensor.New(tensor.Float64, rows))
			res.Vars.Get(pre + "r").Assign(bSlice)
			res.Vars.Get(pre + "p").Assign(bSlice)
		}
		rr = gemm.Dot64(b.F64(), b.F64())
	}

	reducePQ := core.NewReducer(cfg.Workers, nil)
	reduceRR := core.NewReducer(cfg.Workers, nil)
	gather := newGatherService(cfg.Workers, rows, cfg.N)
	defer reducePQ.Close()
	defer reduceRR.Close()
	defer gather.close()

	type iterOut struct {
		rr   float64
		err  error
		iter int
	}
	start := time.Now()
	finalRR := rr
	itersRun := startIter

	// One driver goroutine per worker (the paper's per-task Python driver).
	var wg sync.WaitGroup
	results := make([]iterOut, cfg.Workers)
	for w := range workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := workers[w]
			pre := fmt.Sprintf("w%d/", w)
			localRR := rr
			for iter := startIter; iter < cfg.MaxIters; iter++ {
				pLocal, err := res.Vars.Get(pre + "p").Read()
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				pFull, err := gather.gather(w, pLocal)
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				out, err := ws.sess.Run(map[string]*tensor.Tensor{"p_full": pFull},
					[]string{"partial_pq"}, []string{"save_q"})
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				pq, err := reducePQ.Reduce(w, out[0])
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				alpha := localRR / pq.ScalarFloat()

				out, err = ws.sess.Run(map[string]*tensor.Tensor{
					"alpha": tensor.ScalarF64(alpha),
				}, []string{"partial_rr"}, []string{"save_x", "save_r"})
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				rrNewT, err := reduceRR.Reduce(w, out[0])
				if err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				rrNew := rrNewT.ScalarFloat()
				beta := rrNew / localRR
				localRR = rrNew

				if _, err := ws.sess.Run(map[string]*tensor.Tensor{
					"beta": tensor.ScalarF64(beta),
				}, nil, []string{"save_p"}); err != nil {
					results[w] = iterOut{err: err, iter: iter}
					return
				}
				results[w] = iterOut{rr: localRR, iter: iter + 1}

				// Checkpoint at the agreed cadence (worker 0 writes; all
				// workers are at the same iteration boundary because every
				// reduction is a barrier).
				if w == 0 && opts.CheckpointPath != "" && opts.CheckpointEvery > 0 &&
					(iter+1)%opts.CheckpointEvery == 0 {
					saveCheckpoint(cfg, res, opts.CheckpointPath, iter+1, localRR)
				}
				if cfg.Tol > 0 && math.Sqrt(localRR) < cfg.Tol {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		finalRR = r.rr
		itersRun = r.iter
	}

	// Assemble x.
	x := tensor.New(tensor.Float64, cfg.N)
	for w := 0; w < cfg.Workers; w++ {
		xw, err := res.Vars.Get(fmt.Sprintf("w%d/x", w)).Read()
		if err != nil {
			return nil, err
		}
		copy(x.F64()[w*rows:(w+1)*rows], xw.F64())
	}
	if opts.CheckpointPath != "" {
		if err := saveCheckpoint(cfg, res, opts.CheckpointPath, itersRun, finalRR); err != nil {
			return nil, err
		}
	}
	iters := itersRun - startIter
	return &RealResult{
		X:            x,
		Iters:        itersRun,
		ResidualNorm: math.Sqrt(finalRR),
		Seconds:      elapsed,
		Gflops:       core.Gflops(core.CGFlops(cfg.N, iters), elapsed),
	}, nil
}

func saveCheckpoint(cfg Config, res *session.Resources, path string, step int, rr float64) error {
	ck := checkpoint.Capture(graphID(cfg), int64(step), res.Vars)
	ck.Vars["__rr"] = tensor.ScalarF64(rr)
	return ck.Save(path)
}
