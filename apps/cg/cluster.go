package cg

import (
	"fmt"
	"math"
	"sync"
	"time"

	"tfhpc/internal/cluster"
	"tfhpc/internal/core"
	"tfhpc/internal/gemm"
	"tfhpc/internal/graph"
	"tfhpc/internal/session"
	"tfhpc/internal/tensor"
)

// ClusterOptions tune a distributed solve over running task servers.
type ClusterOptions struct {
	// Job is the worker job name in the cluster spec (default "worker").
	Job string
	// HealthWait bounds how long to wait for the tasks to come up (default
	// 10s) — CI boots them as separate racing processes.
	HealthWait time.Duration
	// ChunkBytes is the ring pipelining granularity (0 = engine default).
	ChunkBytes int
}

// RunCluster solves A·x = b on an already-running cluster: worker w's graph
// is placed on /job:<job>/task:<w>, every op executes on that task over TCP,
// and the allgather/allreduce collectives run ring steps directly between
// the task servers — the driver only moves scalars and the final solution.
func RunCluster(cfg Config, a, b *tensor.Tensor, peers *cluster.Peers, opts ClusterOptions) (*RealResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if a.Rank() != 2 || a.Shape()[0] != cfg.N || a.Shape()[1] != cfg.N {
		return nil, fmt.Errorf("cg: matrix shape %v does not match N=%d", a.Shape(), cfg.N)
	}
	job := opts.Job
	if job == "" {
		job = "worker"
	}
	// The ring spans every task of the job, so the driver count must match
	// exactly: a partial set of drivers would leave un-driven ranks blocking
	// the collectives until the receive timeout.
	if got := peers.Spec().NumTasks(job); got != cfg.Workers {
		return nil, fmt.Errorf("cg: %d workers requested but job %q has %d tasks (counts must match)", cfg.Workers, job, got)
	}
	wait := opts.HealthWait
	if wait <= 0 {
		wait = 10 * time.Second
	}
	if err := peers.WaitHealthy(job, wait); err != nil {
		return nil, err
	}
	const group = "cg"
	if err := peers.InitCollective(job, group, cluster.CollectiveOptions{ChunkBytes: opts.ChunkBytes}); err != nil {
		return nil, err
	}

	rows := cfg.RowsPerWorker()
	sessions := make([]*session.Session, cfg.Workers)
	for w := range sessions {
		g := buildWorker(cfg, w, group, fmt.Sprintf("/job:%s/task:%d", job, w))
		sess, err := session.New(g, nil, session.Options{LocalJob: "client", Remote: peers})
		if err != nil {
			return nil, err
		}
		sessions[w] = sess
	}

	// Initialise remote state: each task gets its A block, x=0, r=p=b slice.
	for w := 0; w < cfg.Workers; w++ {
		pre := fmt.Sprintf("w%d/", w)
		dev := graph.DeviceSpec{Job: job, Task: w}
		blockRows := a.F64()[w*rows*cfg.N : (w+1)*rows*cfg.N]
		bSlice := tensor.FromF64(tensor.Shape{rows}, b.F64()[w*rows:(w+1)*rows])
		for _, init := range []struct {
			name string
			val  *tensor.Tensor
		}{
			{pre + "A", tensor.FromF64(tensor.Shape{rows, cfg.N}, blockRows)},
			{pre + "x", tensor.New(tensor.Float64, rows)},
			{pre + "r", bSlice},
			{pre + "p", bSlice},
		} {
			if _, err := peers.RunRemoteOp(dev, "Assign", "init/"+init.name,
				graph.Attrs{"var_name": init.name}, []string{"value"},
				[]*tensor.Tensor{init.val}); err != nil {
				return nil, fmt.Errorf("cg: init %s: %w", init.name, err)
			}
		}
	}
	rr := gemm.Dot64(b.F64(), b.F64())

	start := time.Now()
	var wg sync.WaitGroup
	results := make([]iterOut, cfg.Workers)
	for w := range sessions {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = driveWorker(cfg, sessions[w], w, 0, rr, nil)
			if results[w].err != nil {
				// Poison the ring on the servers so the other ranks cascade
				// the failure instead of blocking until the receive timeout.
				peers.AbortCollective(job, group)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	finalRR := rr
	itersRun := 0
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		finalRR = r.rr
		itersRun = r.iter
	}

	// Fetch and assemble the solution from the tasks.
	x := tensor.New(tensor.Float64, cfg.N)
	for w := 0; w < cfg.Workers; w++ {
		dev := graph.DeviceSpec{Job: job, Task: w}
		xw, err := peers.RunRemoteOp(dev, "Variable", "read/x",
			graph.Attrs{"var_name": fmt.Sprintf("w%d/x", w)}, nil, nil)
		if err != nil {
			return nil, err
		}
		copy(x.F64()[w*rows:(w+1)*rows], xw.F64())
	}
	return &RealResult{
		X:            x,
		Iters:        itersRun,
		ResidualNorm: math.Sqrt(finalRR),
		Seconds:      elapsed,
		Gflops:       core.Gflops(core.CGFlops(cfg.N, itersRun), elapsed),
	}, nil
}
