// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (regenerated on the virtual platform), plus real-mode
// benchmarks of the library's compute and transport layers.
//
//	go test -bench=. -benchmem
package tfhpc_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"math"

	"tfhpc/apps/cg"
	appfft "tfhpc/apps/fft"
	"tfhpc/apps/matmul"
	"tfhpc/apps/stream"
	"tfhpc/internal/bench"
	"tfhpc/internal/core"
	"tfhpc/internal/fft"
	"tfhpc/internal/gemm"
	"tfhpc/internal/hw"
	"tfhpc/internal/ops"
	"tfhpc/internal/simnet"
	"tfhpc/internal/tensor"
)

// BenchmarkTable1Placement regenerates Table I (instances per node).
func BenchmarkTable1Placement(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.TableI()
	}
	b.StopTimer()
	if out == "" {
		b.Fatal("empty table")
	}
	reportOnce(b, out)
}

// BenchmarkFig7Stream regenerates the STREAM protocol comparison.
func BenchmarkFig7Stream(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportOnce(b, out)
}

// BenchmarkFig8Matmul regenerates the tiled matmul scaling figure.
func BenchmarkFig8Matmul(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportOnce(b, out)
}

// BenchmarkFig9Topology renders the Kebnekaise node topology.
func BenchmarkFig9Topology(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = bench.Fig9()
	}
	b.StopTimer()
	reportOnce(b, out)
}

// BenchmarkFig10CG regenerates the CG solver scaling figure.
func BenchmarkFig10CG(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportOnce(b, out)
}

// BenchmarkFig11FFT regenerates the FFT scaling figure.
func BenchmarkFig11FFT(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = bench.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportOnce(b, out)
}

// reportOnce prints a regenerated table once per benchmark run so that
// `go test -bench` output doubles as the paper-figure report.
var printed = map[string]bool{}

func reportOnce(b *testing.B, out string) {
	if !printed[b.Name()] && os.Getenv("TFHPC_QUIET") == "" {
		printed[b.Name()] = true
		fmt.Printf("\n%s\n", out)
	}
}

// --- real-mode microbenchmarks of the load-bearing kernels and paths ---

// BenchmarkGEMM measures the packed, register-blocked engine in
// internal/gemm. The single-threaded 1024³ float32 case is the acceptance
// benchmark against the seed's naive kernel (BenchmarkGEMM/seed-naive…):
// the engine must be at least 2× the naive throughput on the same machine.
func BenchmarkGEMM(b *testing.B) {
	gflops := func(b *testing.B, n int) {
		b.ReportMetric(gemm.Flops(n, n, n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
	}
	singleThread := func(b *testing.B) func() {
		old := runtime.GOMAXPROCS(1)
		return func() { runtime.GOMAXPROCS(old) }
	}
	for _, n := range []int{256, 1024} {
		n := n
		b.Run(fmt.Sprintf("engine-f32-%d-1thread", n), func(b *testing.B) {
			defer singleThread(b)()
			x := tensor.RandomUniform(tensor.Float32, 1, n, n)
			y := tensor.RandomUniform(tensor.Float32, 2, n, n)
			c := make([]float32, n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemm.Gemm32(false, false, n, n, n, x.F32(), n, y.F32(), n, c, n)
			}
			gflops(b, n)
		})
		b.Run(fmt.Sprintf("engine-f64-%d-1thread", n), func(b *testing.B) {
			defer singleThread(b)()
			x := tensor.RandomUniform(tensor.Float64, 1, n, n)
			y := tensor.RandomUniform(tensor.Float64, 2, n, n)
			c := make([]float64, n*n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemm.Gemm64(false, false, n, n, n, x.F64(), n, y.F64(), n, c, n)
			}
			gflops(b, n)
		})
	}
	b.Run("engine-f32-1024-parallel", func(b *testing.B) {
		n := 1024
		x := tensor.RandomUniform(tensor.Float32, 1, n, n)
		y := tensor.RandomUniform(tensor.Float32, 2, n, n)
		c := make([]float32, n*n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gemm.Gemm32(false, false, n, n, n, x.F32(), n, y.F32(), n, c, n)
		}
		gflops(b, n)
	})
	// The seed's matMulKernel inner loop (i-k-j with the zero-multiplicand
	// branch), kept here as the baseline the engine is measured against.
	b.Run("seed-naive-f32-1024-1thread", func(b *testing.B) {
		defer singleThread(b)()
		n := 1024
		x := tensor.RandomUniform(tensor.Float32, 1, n, n)
		y := tensor.RandomUniform(tensor.Float32, 2, n, n)
		av, bv := x.F32(), y.F32()
		cv := make([]float32, n*n)
		b.ResetTimer()
		for it := 0; it < b.N; it++ {
			clear(cv)
			for i := 0; i < n; i++ {
				ci := cv[i*n : (i+1)*n]
				ai := av[i*n : (i+1)*n]
				for kk := 0; kk < n; kk++ {
					aik := ai[kk]
					if aik == 0 {
						continue
					}
					bk := bv[kk*n : (kk+1)*n]
					for j := range ci {
						ci[j] += aik * bk[j]
					}
				}
			}
		}
		gflops(b, n)
	})
}

func BenchmarkMatMulKernel512(b *testing.B) {
	x := tensor.RandomUniform(tensor.Float32, 1, 512, 512)
	y := tensor.RandomUniform(tensor.Float32, 2, 512, 512)
	b.SetBytes(2 * 512 * 512 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Run("MatMul", &ops.Context{}, []*tensor.Tensor{x, y}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatVecKernel2048(b *testing.B) {
	a := tensor.RandomUniform(tensor.Float64, 1, 2048, 2048)
	x := tensor.RandomUniform(tensor.Float64, 2, 2048)
	b.SetBytes(2048 * 2048 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Run("MatVec", &ops.Context{}, []*tensor.Tensor{a, x}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFT measures the planned FFT engine in internal/fft at the
// acceptance size 2^20 complex128, single- and multi-threaded, against the
// seed's radix-2 loop (seed-radix2…, kept below as the baseline, per-call
// twiddle table included — that is what every FFT op used to pay). The
// engine must be at least 4× the seed single-thread. Each iteration is a
// forward+inverse pair so the data stays bounded; sub-benchmark names carry
// fft.KernelName() so runs under TFHPC_NOSIMD=1 record the portable-go
// kernel rather than silently mixing trajectories.
func BenchmarkFFT(b *testing.B) {
	const n = 1 << 20
	gflops := func(b *testing.B) {
		b.ReportMetric(2*core.FFTFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
	}
	singleThread := func() func() {
		old := runtime.GOMAXPROCS(1)
		return func() { runtime.GOMAXPROCS(old) }
	}
	signal := func() []complex128 {
		a := make([]complex128, n)
		for i := range a {
			v := float64(i%251)*0.013 - 1.6
			a[i] = complex(v, -v)
		}
		return a
	}
	pair := func(b *testing.B, a []complex128) {
		for i := 0; i < b.N; i++ {
			if err := fft.Forward(a); err != nil {
				b.Fatal(err)
			}
			if err := fft.Inverse(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("engine-c128-2^20-1thread-"+fft.KernelName(), func(b *testing.B) {
		defer singleThread()()
		a := signal()
		b.ResetTimer()
		pair(b, a)
		gflops(b)
	})
	// Multi-threaded: above fourStepMin with >1 workers the engine takes
	// the four-step path, whose sub-FFT sweeps and transposes spread over
	// the shared worker pool.
	b.Run("engine-c128-2^20-parallel-"+fft.KernelName(), func(b *testing.B) {
		a := signal()
		b.ResetTimer()
		pair(b, a)
		gflops(b)
	})
	b.Run("seed-radix2-2^20-1thread", func(b *testing.B) {
		defer singleThread()()
		a := signal()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seedRadix2FFT(a, false)
			seedRadix2FFT(a, true)
		}
		gflops(b)
	})
}

// BenchmarkRFFT measures the real-input fast path at 2^20 real samples
// (half-spectrum out), using the paper's flop convention at half weight —
// an n-point RFFT runs an n/2-point complex transform plus an O(n) unpack.
func BenchmarkRFFT(b *testing.B) {
	const n = 1 << 20
	gflops := func(b *testing.B) {
		b.ReportMetric(core.FFTFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
	}
	singleThread := func() func() {
		old := runtime.GOMAXPROCS(1)
		return func() { runtime.GOMAXPROCS(old) }
	}
	run := func(b *testing.B) {
		rp, err := fft.RPlanFor(n)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%251)*0.013 - 1.6
		}
		spec := make([]complex128, rp.SpectrumLen())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := rp.Transform(spec, x); err != nil {
				b.Fatal(err)
			}
			if err := rp.Inverse(x, spec); err != nil {
				b.Fatal(err)
			}
		}
		gflops(b)
	}
	b.Run("engine-rfft-2^20-1thread-"+fft.KernelName(), func(b *testing.B) {
		defer singleThread()()
		run(b)
	})
	b.Run("engine-rfft-2^20-parallel-"+fft.KernelName(), run)
}

// seedRadix2FFT is the seed's FFT kernel, kept verbatim as the baseline the
// engine is measured against: serial radix-2 with a fresh twiddle table
// computed on every call.
func seedRadix2FFT(a []complex128, inverse bool) {
	n := len(a)
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	roots := make([]complex128, n/2)
	for k := range roots {
		ang := sign * 2 * math.Pi * float64(k) / float64(n)
		roots[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for start := 0; start < n; start += length {
			for j := 0; j < half; j++ {
				w := roots[j*stride]
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= inv
		}
	}
}

func BenchmarkFFTKernel64k(b *testing.B) {
	x := tensor.RandomUniform(tensor.Complex128, 1, 1<<16)
	b.SetBytes(int64(1<<16) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ops.Run("FFT", &ops.Context{}, []*tensor.Tensor{x}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTensorCodec1MB(b *testing.B) {
	t := tensor.RandomUniform(tensor.Float32, 1, 512, 512)
	b.SetBytes(t.ByteSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := t.Encode(nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tensor.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamRealLoopback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := stream.RunReal(stream.RealConfig{Elements: 1 << 14, Iters: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatmulRealPipeline(b *testing.B) {
	cfg := matmul.Config{N: 128, Tile: 32, Workers: 4, Reducers: 2}
	x := tensor.RandomUniform(tensor.Float32, 1, cfg.N, cfg.N)
	y := tensor.RandomUniform(tensor.Float32, 2, cfg.N, cfg.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := matmul.RunReal(dir, cfg, x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGRealSolve(b *testing.B) {
	cfg := cg.Config{N: 256, Workers: 4, MaxIters: 50, Tol: 1e-8}
	a := cg.SPDMatrix(cfg.N, 1)
	rhs := tensor.RandomUniform(tensor.Float64, 2, cfg.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cg.RunReal(cfg, a, rhs, cg.RealOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTRealPipeline(b *testing.B) {
	cfg := appfft.Config{N: 1 << 12, Tiles: 8, Workers: 4}
	r := tensor.NewRNG(3)
	signal := make([]complex128, cfg.N)
	for i := range signal {
		signal[i] = complex(r.Float64(), r.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := appfft.RunReal(dir, cfg, signal); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations: the design choices DESIGN.md calls out ---

// BenchmarkAblationTransports quantifies the protocol gap the paper's
// STREAM experiment measures, at matmul's tile size.
func BenchmarkAblationTransports(b *testing.B) {
	nt := hw.Kebnekaise.NodeTypes["k80"]
	for _, proto := range []simnet.Protocol{simnet.GRPC, simnet.MPI, simnet.RDMA} {
		b.Run(proto.String(), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := stream.RunSim(stream.SimConfig{
					Cluster: hw.Kebnekaise, NodeType: nt, Protocol: proto,
					Placement: simnet.OnGPU, SizeBytes: 256 << 20, Iters: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				mbps = res.MBps
			}
			b.ReportMetric(mbps, "MB/s")
		})
	}
}

// BenchmarkAblationReducers varies the reducer count of the tiled matmul:
// the paper chose two; one becomes an ingest bottleneck, four add little.
func BenchmarkAblationReducers(b *testing.B) {
	for _, reducers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("reducers=%d", reducers), func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				res, err := matmul.RunSim(matmul.SimConfig{
					Cluster:  hw.Kebnekaise,
					NodeType: hw.Kebnekaise.NodeTypes["k80"],
					Config:   matmul.Config{N: 32768, Tile: 8192, Workers: 8, Reducers: reducers},
				})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.Gflops
			}
			b.ReportMetric(gflops, "Gflop/s")
		})
	}
}

// BenchmarkAblationTileSize varies the matmul tile size on Tegner K80: the
// paper used 8192 there and 4096 on the 1 GB K420.
func BenchmarkAblationTileSize(b *testing.B) {
	for _, tile := range []int{2048, 4096, 8192} {
		b.Run(fmt.Sprintf("tile=%d", tile), func(b *testing.B) {
			var gflops float64
			for i := 0; i < b.N; i++ {
				res, err := matmul.RunSim(matmul.SimConfig{
					Cluster:  hw.Tegner,
					NodeType: hw.Tegner.NodeTypes["k80"],
					Config:   matmul.Config{N: 32768, Tile: tile, Workers: 4, Reducers: 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				gflops = res.Gflops
			}
			b.ReportMetric(gflops, "Gflop/s")
		})
	}
}

// BenchmarkAblationCGIterOverhead separates the CG iteration cost into
// matvec and runtime overhead across GPU counts — the effect that caps
// strong scaling in Fig. 10.
func BenchmarkAblationCGIterOverhead(b *testing.B) {
	for _, gpus := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("gpus=%d", gpus), func(b *testing.B) {
			var res *cg.SimResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = cg.RunSim(cg.SimConfig{
					Cluster:  hw.Kebnekaise,
					NodeType: hw.Kebnekaise.NodeTypes["v100"],
					N:        32768, GPUs: gpus, Iters: 500,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(1e3*res.PerIter, "ms/iter")
			b.ReportMetric(1e3*res.MVPerIter, "ms/matvec")
		})
	}
}
