// bench_diff is the perf-trajectory gate: it compares a freshly generated
// tfbench report (BENCH_ci.json) against the committed baseline and fails
// on regressions beyond the tolerance — >20% by default — of the metrics
// the ROADMAP tracks: gemm/fft Gflop/s, collective ring bus bandwidth,
// serving throughput + p99 latency, the control-plane rollout rows
// (p99 under rollout, warm/cold first-request, and the exact-zero drop
// count), and the generative serving rows (tokens/s, open-loop TTFT and
// inter-token p99, and the continuous-vs-naive TTFT speedup).
//
//	go run ./scripts/bench_diff -baseline scripts/bench_baseline.json -current BENCH_ci.json
//
// Throughput-style metrics regress by dropping, latency metrics by rising.
// Metrics present in the baseline but absent from the current report fail
// (a silently vanished benchmark is itself a regression); new metrics pass
// with a note — commit a refreshed baseline to start gating them.
// -update rewrites the baseline from the current report instead of diffing.
//
// -allocs switches to the allocation-regression gate: -current is then raw
// `go test -bench -benchmem` output and -baseline a committed JSON map of
// benchmark name → allocs/op. Any growth fails — the zero-alloc hot loops
// are an invariant, not a trend, so there is no tolerance band:
//
//	go test -run='^$' -bench=... -benchmem ./... > BENCH_allocs.txt
//	go run ./scripts/bench_diff -allocs -baseline scripts/alloc_baseline.json -current BENCH_allocs.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"encoding/json"

	"tfhpc/internal/bench"
)

// metric is one gated scalar. For latency metrics (lowerBetter) the
// regression direction flips; noisy metrics (microsecond-scale
// micro-measurements whose run-to-run variance approaches the normal
// tolerance) get the wider noisy gate. Exact metrics are invariants, not
// trends — like the alloc gate, any growth over the baseline fails with no
// tolerance band (rollout drops must stay exactly zero).
type metric struct {
	name        string
	value       float64
	lowerBetter bool
	noisy       bool
	exact       bool
}

// extract flattens a report into its gated metrics.
func extract(r *bench.Report) []metric {
	var ms []metric
	add := func(name string, v float64, lowerBetter bool) {
		if v > 0 {
			ms = append(ms, metric{name: name, value: v, lowerBetter: lowerBetter})
		}
	}
	for _, g := range r.Gemm {
		add(fmt.Sprintf("gemm/n%d/f32_gflops", g.N), g.F32Gflops, false)
		add(fmt.Sprintf("gemm/n%d/f64_gflops", g.N), g.F64Gflops, false)
	}
	if r.Fft != nil {
		for _, f := range r.Fft.Rows {
			add(fmt.Sprintf("fft/logn%d/c128_gflops", f.LogN), f.C128Gflops, false)
			add(fmt.Sprintf("fft/logn%d/rfft_gflops", f.LogN), f.RfftGflops, false)
		}
		add("fft/2d_gflops", r.Fft.Fft2DGflops, false)
	}
	if r.Collective != nil {
		// One gated metric per (fabric, group size, payload, algorithm):
		// a regression in any single algorithm — ring, doubling, the auto
		// picker, or the fused small-tensor path — fails on its own even if
		// the others hold. Rows whose whole measurement is sub-millisecond
		// (the latency-bound loopback points, best-of-N over tens of
		// microseconds) carry scheduler-jitter variance that can approach
		// the normal tolerance on its own, so they take the wider noisy
		// gate — still a gate: "doubling broke, 3x slower" fails, 1-core
		// contention on a 40µs measurement does not.
		for _, c := range r.Collective.Rows {
			name := fmt.Sprintf("collective/%s/p%d/e%d/%s_bus_mbps", c.Fabric, c.Tasks, c.Elems, c.Algo)
			if c.Tensors > 0 {
				name = fmt.Sprintf("collective/%s/p%d/e%dx%d/%s_bus_mbps", c.Fabric, c.Tasks, c.Elems, c.Tensors, c.Algo)
			}
			if c.BusMBps > 0 {
				ms = append(ms, metric{name: name, value: c.BusMBps, noisy: c.Seconds < 2e-3})
			}
		}
	}
	for _, s := range r.Serving {
		key := fmt.Sprintf("serving/%s/c%d/b%d", s.Mode, s.Clients, s.MaxBatch)
		add(key+"/throughput_rps", s.ThroughputRps, false)
		// p99 is gated in both modes: closed-loop catches "batching broke",
		// the high-fan-in open-loop row catches "the transport tier stopped
		// holding tail latency at 4x the closed-loop connection count".
		add(key+"/p99_ms", s.Latency.P99Ms, true)
	}
	for _, g := range r.Generate {
		key := fmt.Sprintf("generate/%s/%s", g.Load, g.Mode)
		if g.Load == "closed" {
			// Open-loop tokens/s just echoes the offered rate; only the
			// closed-loop rows measure what the decoder can sustain. A
			// single-core shared-tenant throughput number swings with the
			// neighbours, so it takes the noisy band — the gate is for
			// "decode broke, 3x slower", not tenancy jitter.
			if g.TokensPerSec > 0 {
				ms = append(ms, metric{name: key + "/tokens_per_sec", value: g.TokensPerSec, noisy: true})
			}
		}
		if g.Load == "open" {
			// Open-loop tails are the generative SLO surface. Only the
			// continuous rows are latency-gated — the naive baseline's tail
			// is the thing being beaten, not a guarantee to hold.
			if g.Mode == "continuous" {
				add(key+"/ttft_p99_ms", g.TTFT.P99Ms, true)
				add(key+"/intertoken_p99_ms", g.InterToken.P99Ms, true)
			}
			// TTFT-p99 ratio naive/continuous: the continuous-batching win
			// itself. A scheduler regression toward flush-and-refill drags
			// it to 1.0. Ratio-of-two-tails variance gets the noisy gate.
			if g.SpeedupVsNaive > 0 {
				ms = append(ms, metric{name: key + "/ttft_speedup_vs_naive", value: g.SpeedupVsNaive, noisy: true})
			}
		} else if g.SpeedupVsNaive > 0 {
			// Closed-loop tokens/s ratio continuous/naive ≈ 1.0: per-step
			// scheduling overhead against a bare decode loop. Creeping
			// engine overhead shows up here before anywhere else. The two
			// sides are measured seconds apart on a shared host, so the
			// ratio inherits their tenancy variance — noisy band.
			ms = append(ms, metric{name: key + "/speedup_vs_naive", value: g.SpeedupVsNaive, noisy: true})
		}
	}
	if ro := r.Rollout; ro != nil {
		if ro.Seconds > 0 {
			add("serving/rollout/throughput_rps", float64(ro.Requests)/ro.Seconds, false)
		}
		add("serving/rollout/p99_ms", ro.Latency.P99Ms, true)
		// Warm-vs-cold first request: the warmup stage's whole point is that
		// the warmed number stays small; both are tracked as latency rows.
		add("serving/rollout/cold_first_ms", ro.ColdFirstMs, true)
		add("serving/rollout/warm_first_ms", ro.WarmFirstMs, true)
		// Drops is an exact-zero invariant appended directly: add() skips
		// non-positive values, and zero is precisely the requirement — the
		// row must exist in the baseline so growth to any value fails.
		ms = append(ms, metric{name: "serving/rollout/drops", value: float64(ro.Drops), lowerBetter: true, exact: true})
	}
	return ms
}

func load(path string) (*bench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var r bench.Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	baselinePath := flag.String("baseline", "scripts/bench_baseline.json", "committed baseline report")
	currentPath := flag.String("current", "BENCH_ci.json", "freshly generated report")
	tol := flag.Float64("max-regress", 0.20, "allowed fractional regression before failing")
	noisyTol := flag.Float64("max-regress-noisy", 0.55, "allowed fractional regression for sub-millisecond micro-measurements (jitter-dominated)")
	// Tail latency on shared CI hosts is far noisier than throughput (a
	// single scheduler hiccup moves p99), so it gets a wider gate: the
	// point is catching "batching broke, p99 went 10x", not 30% jitter.
	latTol := flag.Float64("max-regress-latency", 1.0, "allowed fractional regression for latency metrics")
	// Sub-millisecond p99s are scheduler-noise-dominated: a relative bound
	// alone flags 0.4ms -> 1.3ms as +200% even though both are excellent.
	// A latency regression must also exceed this absolute slack, so the
	// gate reserves its teeth for "batching broke, p99 went to 30ms".
	latSlack := flag.Float64("latency-slack-ms", 1.0, "absolute ms a latency metric may rise regardless of percentage")
	update := flag.Bool("update", false, "rewrite the baseline from the current report")
	allocs := flag.Bool("allocs", false, "gate -benchmem allocs/op instead of the perf report (baseline is a JSON name->allocs map)")
	allocSlack := flag.Float64("allocs-slack", 2, "allocs/op a nonzero-baseline benchmark may grow by (zero baselines are exact: the first allocation fails)")
	flag.Parse()

	if *allocs {
		allocsGate(*baselinePath, *currentPath, *allocSlack, *update)
		return
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}
	if *update {
		buf, err := cur.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("bench_diff: baseline %s updated from %s\n", *baselinePath, *currentPath)
		return
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	// Absolute Gflop/s and bus MB/s only compare meaningfully on the same
	// host class. On a different one (CI runner generation changed, baseline
	// committed from a dev box) the diff is hardware, not code — report and
	// step aside until the baseline is refreshed from this host class with
	// -update (CI uploads BENCH_ci.json precisely so it can seed that).
	if base.GoMaxProcs != cur.GoMaxProcs || base.GemmKernel != cur.GemmKernel {
		fmt.Printf("bench_diff: host class mismatch (baseline gomaxprocs=%d kernel=%q, current gomaxprocs=%d kernel=%q); skipping hard gate — refresh with -update on this host class\n",
			base.GoMaxProcs, base.GemmKernel, cur.GoMaxProcs, cur.GemmKernel)
		return
	}

	baseM := map[string]metric{}
	for _, m := range extract(base) {
		baseM[m.name] = m
	}
	curM := map[string]metric{}
	for _, m := range extract(cur) {
		curM[m.name] = m
	}

	names := make([]string, 0, len(baseM))
	for n := range baseM {
		names = append(names, n)
	}
	sort.Strings(names)

	regressions := 0
	fmt.Printf("%-44s %12s %12s %8s\n", "metric", "baseline", "current", "delta")
	for _, n := range names {
		b := baseM[n]
		c, ok := curM[n]
		if !ok {
			fmt.Printf("%-44s %12.2f %12s %8s  REGRESSION (metric vanished)\n", n, b.value, "-", "-")
			regressions++
			continue
		}
		delta := 0.0
		if b.value != 0 {
			delta = (c.value - b.value) / b.value
		}
		verdict := ""
		bound := *tol
		if b.noisy {
			bound = *noisyTol
		}
		worse := delta < -bound
		if b.lowerBetter {
			bound = *latTol
			worse = delta > bound && c.value-b.value > *latSlack
		}
		if b.exact {
			// Invariant metric: any growth over the baseline fails, exactly.
			worse = c.value > b.value
		}
		if worse {
			verdict = fmt.Sprintf("  REGRESSION (>%.0f%%)", bound*100)
			if b.exact {
				verdict = "  REGRESSION (exact metric grew)"
			}
			regressions++
		}
		fmt.Printf("%-44s %12.2f %12.2f %+7.1f%%%s\n", n, b.value, c.value, delta*100, verdict)
	}
	for _, name := range sortedNew(baseM, curM) {
		fmt.Printf("%-44s %12s %12.2f %8s  (new, not gated)\n", name, "-", curM[name].value, "-")
	}
	if regressions > 0 {
		fatal(fmt.Errorf("%d metric(s) regressed beyond %.0f%%", regressions, *tol*100))
	}
	fmt.Printf("bench_diff: %d metrics within %.0f%% of baseline\n", len(names), *tol*100)
}

// allocsGate compares allocs/op from raw `go test -benchmem` output
// against the committed JSON baseline. A zero-alloc baseline is an exact
// invariant — its first allocation fails; nonzero baselines (the legacy
// call paths kept for comparison) may drift by the slack before failing.
// A vanished benchmark always fails; shrinkage passes (refresh the
// baseline with -update to lock the improvement in).
func allocsGate(baselinePath, currentPath string, slack float64, update bool) {
	cur, err := parseBenchAllocs(currentPath)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("%s: no 'allocs/op' benchmark lines found", currentPath))
	}
	if update {
		buf, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(baselinePath, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("bench_diff: alloc baseline %s updated from %s\n", baselinePath, currentPath)
		return
	}
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(err)
	}
	base := map[string]float64{}
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", baselinePath, err))
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Printf("%-52s %10s %10s\n", "benchmark", "base a/op", "cur a/op")
	for _, n := range names {
		c, ok := cur[n]
		if !ok {
			fmt.Printf("%-52s %10.0f %10s  REGRESSION (benchmark vanished)\n", n, base[n], "-")
			regressions++
			continue
		}
		bound := base[n]
		if bound > 0 {
			bound += slack
		}
		verdict := ""
		if c > bound {
			verdict = "  REGRESSION (allocs/op grew)"
			regressions++
		}
		fmt.Printf("%-52s %10.0f %10.0f%s\n", n, base[n], c, verdict)
	}
	for _, n := range sortedNewAllocs(base, cur) {
		fmt.Printf("%-52s %10s %10.0f  (new, not gated)\n", n, "-", cur[n])
	}
	if regressions > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed on allocs/op", regressions))
	}
	fmt.Printf("bench_diff: %d benchmarks at or below their alloc baseline\n", len(names))
}

// parseBenchAllocs extracts name → allocs/op from `go test -benchmem`
// output. The -procs suffix is stripped so baselines travel across runner
// core counts.
func parseBenchAllocs(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasSuffix(line, "allocs/op") || !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		out[name] = v
	}
	return out, sc.Err()
}

func sortedNewAllocs(base, cur map[string]float64) []string {
	var out []string
	for n := range cur {
		if _, ok := base[n]; !ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// sortedNew lists metrics present only in the current report.
func sortedNew(base, cur map[string]metric) []string {
	var out []string
	for n := range cur {
		if _, ok := base[n]; !ok {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench_diff: %v\n", err)
	os.Exit(1)
}
