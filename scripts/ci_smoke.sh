#!/usr/bin/env bash
# Distributed smoke tests over real processes. Three legs, gated by
# SMOKE_ONLY (core|elastic|rollout|all, default all):
#
# core — build the binaries, boot a 4-task localhost cluster as real
# processes, run a CG solve and an SGD epoch over TCP (collectives ring
# between the tfserver tasks), a fused multi-tensor SGD epoch over the same
# cluster, and fail on nonzero exit — tfcg enforces the residual tolerance
# itself and tfsgd enforces loss decrease and replica consistency. The fusion
# leg additionally asserts the engine's numerics contract: a fused run's
# final weights must be bit-identical to the unfused run's (both reduce
# through the same doubling tree), compared via checkpoint files. Then the
# serving smoke: tfsgd checkpoints its trained model, tfserve serves it, and
# concurrent HTTP predicts must coalesce while staying bit-identical to
# single-request answers.
#
# elastic — the fault-tolerance contract: boot 4 tfservers, kill -9 one of
# them mid-epoch, restart it, and require the training run to shrink around
# the casualty, resume from its checkpoint, grow back to full width when the
# task returns, and land within tolerance of an uninterrupted run — without
# the driver restarting.
#
# rollout — the control-plane contract: boot a tfserve fleet with
# -autoscale/-canary, put it under sustained HTTP load, and require a full
# lifecycle — autoscaler scale-up, canary rollout stepped to promotion,
# scale-down after the load stops — with zero dropped requests and zero
# autoscaler flaps (rollout_smoke fails on any non-2xx or flap).
#
# Every leg runs under a timeout(1) wrapper: a hung leg exits with the
# distinct code 97 instead of stalling the CI job to its global limit.
#
# Server processes log to $BIN/logs/ so CI can upload them when a leg fails.
set -euo pipefail
# Absolute self-path, captured before the cd: the timeout wrapper re-execs
# this script for each leg.
SELF="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
cd "$(dirname "$0")/.."

BIN=${BIN:-bin}
LOGDIR="$BIN/logs"
mkdir -p "$BIN" "$LOGDIR"
go build -o "$BIN/tfserver" ./cmd/tfserver
go build -o "$BIN/tfcg" ./cmd/tfcg
go build -o "$BIN/tfsgd" ./cmd/tfsgd
go build -o "$BIN/tfserve" ./cmd/tfserve
go build -o "$BIN/serving_smoke" ./scripts/serving_smoke
go build -o "$BIN/rollout_smoke" ./scripts/rollout_smoke

BASE_PORT=${BASE_PORT:-17841}
SMOKE_ONLY=${SMOKE_ONLY:-all}
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT
# timeout(1) TERMs the leg process; without this the EXIT trap would not run
# and booted servers would leak past the leg.
trap 'cleanup; exit 143' TERM INT

run_core() {
  local TASKS=4
  local SPEC=""
  # Bind the wildcard address but dial loopback: the listen and advertised
  # addresses genuinely differ, exercising tfserver -advertise.
  for i in $(seq 0 $((TASKS - 1))); do
    local port=$((BASE_PORT + i))
    local addr="127.0.0.1:${port}"
    SPEC="${SPEC:+$SPEC,}$addr"
    "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" \
      >"$LOGDIR/tfserver-$i.log" 2>&1 &
    pids+=($!)
  done
  echo "smoke: booted $TASKS tfserver tasks: $SPEC (logs in $LOGDIR)"

  echo "smoke: CG solve over TCP"
  "$BIN/tfcg" -mode cluster -spec "$SPEC" -workers $TASKS -n 256 -iters 300 -tol 1e-6

  echo "smoke: SGD training over TCP"
  "$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3

  echo "smoke: fused multi-tensor SGD over TCP (AllReduceFused + async loss handles)"
  "$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3 \
    -param-tensors 4 -fuse

  # --- fusion bit-identity: fused and unfused runs must end on the same bits
  local CKPT_UNFUSED CKPT_FUSED
  CKPT_UNFUSED=$(mktemp -t tfhpc_smoke_unfused_XXXX.ckpt)
  CKPT_FUSED=$(mktemp -t tfhpc_smoke_fused_XXXX.ckpt)
  echo "smoke: fused-vs-unfused bit-identity on final weights"
  "$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
    -param-tensors 4 -checkpoint "$CKPT_UNFUSED"
  "$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
    -param-tensors 4 -fuse -checkpoint "$CKPT_FUSED"
  if ! cmp -s "$CKPT_UNFUSED" "$CKPT_FUSED"; then
    echo "smoke: FAIL — fused SGD checkpoint differs from unfused (fusion broke bit-identity)"
    exit 1
  fi
  rm -f "$CKPT_UNFUSED" "$CKPT_FUSED"

  # --- serving smoke: train -> checkpoint -> serve -> predict ---------------
  local CKPT SERVE_PORT SERVE_ADDR
  CKPT=$(mktemp -t tfhpc_smoke_XXXX.ckpt)
  SERVE_PORT=$((BASE_PORT + 100))
  SERVE_ADDR="127.0.0.1:${SERVE_PORT}"

  echo "smoke: training + checkpointing the serving model"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 30 -checkpoint "$CKPT"

  echo "smoke: booting tfserve on $SERVE_ADDR"
  "$BIN/tfserve" -listen "$SERVE_ADDR" -model "smoke=$CKPT" -max-batch 32 -batch-timeout 5ms \
    >"$LOGDIR/tfserve.log" 2>&1 &
  pids+=($!)

  echo "smoke: concurrent HTTP predicts (batched must equal single, bit-for-bit)"
  "$BIN/serving_smoke" -addr "http://$SERVE_ADDR" -model smoke -features 64
  rm -f "$CKPT"
}

run_elastic() {
  local TASKS=4 VICTIM=2
  local EBASE=$((BASE_PORT + 20))
  local ESPEC=""
  local -a epids=()
  for i in $(seq 0 $((TASKS - 1))); do
    local port=$((EBASE + i))
    local addr="127.0.0.1:${port}"
    ESPEC="${ESPEC:+$ESPEC,}$addr"
    "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" \
      >"$LOGDIR/elastic-tfserver-$i.log" 2>&1 &
    epids[$i]=$!
    pids+=($!)
  done
  echo "smoke: elastic leg booted $TASKS tfserver tasks: $ESPEC"

  local SGD_ARGS=(-spec "$ESPEC" -workers $TASKS -features 64 -rows 128 -steps 40 -lr 0.3 -ckpt-every 3)

  echo "smoke: elastic baseline (uninterrupted)"
  "$BIN/tfsgd" -mode elastic "${SGD_ARGS[@]}" >"$LOGDIR/elastic-baseline.log" 2>&1
  cat "$LOGDIR/elastic-baseline.log"
  local BASE_LOSS
  BASE_LOSS=$(sed -n 's/.*final_loss=\([^ ]*\).*/\1/p' "$LOGDIR/elastic-baseline.log")
  if [ -z "$BASE_LOSS" ]; then
    echo "smoke: FAIL — elastic baseline printed no final_loss"
    exit 1
  fi

  local CKPT
  CKPT=$(mktemp -u -t tfhpc_elastic_XXXX.ckpt)
  echo "smoke: elastic run with kill -9 of task $VICTIM mid-epoch"
  # -step-delay paces the run so the kill lands mid-training and the restart
  # is back before the final checkpoint boundaries.
  "$BIN/tfsgd" -mode elastic "${SGD_ARGS[@]}" -ckpt-file "$CKPT" -step-delay 50ms \
    >"$LOGDIR/elastic-run.log" 2>&1 &
  local run_pid=$!
  sleep 0.8
  echo "smoke: kill -9 tfserver task $VICTIM (pid ${epids[$VICTIM]})"
  kill -9 "${epids[$VICTIM]}"
  sleep 0.4
  local vport=$((EBASE + VICTIM))
  local vaddr="127.0.0.1:${vport}"
  echo "smoke: restarting tfserver task $VICTIM on $vaddr"
  "$BIN/tfserver" -job worker -task "$VICTIM" -listen "0.0.0.0:${vport}" -advertise "$vaddr" \
    >"$LOGDIR/elastic-tfserver-$VICTIM-restarted.log" 2>&1 &
  pids+=($!)

  if ! wait "$run_pid"; then
    echo "smoke: FAIL — elastic run exited nonzero"
    cat "$LOGDIR/elastic-run.log"
    exit 1
  fi
  cat "$LOGDIR/elastic-run.log"
  rm -f "$CKPT"

  local SUMMARY LOSS SHRINKS GROWS WORKERS
  SUMMARY=$(grep 'final_loss=' "$LOGDIR/elastic-run.log")
  LOSS=$(sed -n 's/.*final_loss=\([^ ]*\).*/\1/p' <<<"$SUMMARY")
  SHRINKS=$(sed -n 's/.*shrinks=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  GROWS=$(sed -n 's/.*grows=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  WORKERS=$(sed -n 's/.*workers=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  if [ "${SHRINKS:-0}" -lt 1 ]; then
    echo "smoke: FAIL — run never shrank (the kill missed the training window)"
    exit 1
  fi
  if [ "${GROWS:-0}" -lt 1 ]; then
    echo "smoke: FAIL — restarted task never rejoined"
    exit 1
  fi
  if [ "${WORKERS:-0}" -ne $TASKS ]; then
    echo "smoke: FAIL — finished at width ${WORKERS:-0}, want $TASKS"
    exit 1
  fi
  awk -v got="$LOSS" -v base="$BASE_LOSS" 'BEGIN {
    d = got - base; if (d < 0) d = -d
    b = base; if (b < 0) b = -b
    if (b == 0) { print "smoke: FAIL — degenerate baseline loss 0"; exit 1 }
    rel = d / b
    if (rel > 1e-3) {
      printf "smoke: FAIL — elastic loss %g vs baseline %g (relative diff %g > 1e-3)\n", got, base, rel
      exit 1
    }
    printf "smoke: elastic loss %g vs baseline %g (relative diff %g) OK\n", got, base, rel
  }'
}

run_rollout() {
  local RPORT=$((BASE_PORT + 60))
  local RADDR="127.0.0.1:${RPORT}"
  local CKPT_V1 CKPT_V2
  CKPT_V1=$(mktemp -t tfhpc_rollout_v1_XXXX.ckpt)
  CKPT_V2=$(mktemp -t tfhpc_rollout_v2_XXXX.ckpt)

  echo "smoke: training rollout checkpoints (v1: 30 steps, v2: 60 steps)"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 30 -checkpoint "$CKPT_V1"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 60 -checkpoint "$CKPT_V2"

  echo "smoke: booting tfserve control plane on $RADDR"
  "$BIN/tfserve" -listen "$RADDR" -model "smoke=$CKPT_V1" -batch-timeout 1ms \
    -autoscale "min=1,max=3,target=3,tick=100ms,down-cooldown=1500ms" \
    -canary "steps=25;100,hold=1200ms,maxp99=500ms,maxerr=0.02,min-samples=10" \
    -slo-window 10s \
    >"$LOGDIR/tfserve-rollout.log" 2>&1 &
  pids+=($!)

  echo "smoke: full lifecycle under load (scale-up -> canary -> promote -> scale-down)"
  "$BIN/rollout_smoke" -addr "http://$RADDR" -model smoke \
    -canary-ckpt "$CKPT_V2" -version 60 -features 64 -clients 16
  rm -f "$CKPT_V1" "$CKPT_V2"
}

# Internal re-entry point: `ci_smoke.sh --leg <name>` runs one leg directly
# (no timeout wrapper) — it is what the wrapper execs under timeout(1).
if [ "${1:-}" = "--leg" ]; then
  "run_${2:?--leg needs a leg name}"
  exit 0
fi

LEG_TIMEOUT=${LEG_TIMEOUT:-420}
run_leg() {
  local leg=$1 rc=0
  echo "smoke: leg '$leg' (timeout ${LEG_TIMEOUT}s)"
  timeout --kill-after=20 "$LEG_TIMEOUT" "$SELF" --leg "$leg" || rc=$?
  if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
    echo "smoke: FAIL — leg '$leg' exceeded its ${LEG_TIMEOUT}s timeout" >&2
    exit 97
  elif [ "$rc" -ne 0 ]; then
    echo "smoke: FAIL — leg '$leg' exited $rc" >&2
    exit "$rc"
  fi
}

case "$SMOKE_ONLY" in
  core) run_leg core ;;
  elastic) run_leg elastic ;;
  rollout) run_leg rollout ;;
  all)
    run_leg core
    run_leg elastic
    run_leg rollout
    ;;
  *)
    echo "smoke: unknown SMOKE_ONLY=$SMOKE_ONLY (want core|elastic|rollout|all)" >&2
    exit 1
    ;;
esac

echo "smoke: OK"
