#!/usr/bin/env bash
# Distributed smoke test: build the binaries, boot a 4-task localhost cluster
# as real processes, run a CG solve and an SGD epoch over TCP (collectives
# ring between the tfserver tasks), a fused multi-tensor SGD epoch over the
# same cluster, and fail on nonzero exit — tfcg enforces the residual
# tolerance itself and tfsgd enforces loss decrease and replica consistency.
# The fusion leg additionally asserts the engine's numerics contract: a
# fused run's final weights must be bit-identical to the unfused run's
# (both reduce through the same doubling tree), compared via checkpoint
# files. Then the serving smoke: tfsgd checkpoints its trained model,
# tfserve serves it, and concurrent HTTP predicts must coalesce while
# staying bit-identical to single-request answers.
#
# Server processes log to $BIN/logs/ so CI can upload them when a leg fails.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-bin}
LOGDIR="$BIN/logs"
mkdir -p "$BIN" "$LOGDIR"
go build -o "$BIN/tfserver" ./cmd/tfserver
go build -o "$BIN/tfcg" ./cmd/tfcg
go build -o "$BIN/tfsgd" ./cmd/tfsgd
go build -o "$BIN/tfserve" ./cmd/tfserve
go build -o "$BIN/serving_smoke" ./scripts/serving_smoke

BASE_PORT=${BASE_PORT:-17841}
TASKS=4
SPEC=""
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Bind the wildcard address but dial loopback: the listen and advertised
# addresses genuinely differ, exercising tfserver -advertise.
for i in $(seq 0 $((TASKS - 1))); do
  port=$((BASE_PORT + i))
  addr="127.0.0.1:${port}"
  SPEC="${SPEC:+$SPEC,}$addr"
  "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" \
    >"$LOGDIR/tfserver-$i.log" 2>&1 &
  pids+=($!)
done
echo "smoke: booted $TASKS tfserver tasks: $SPEC (logs in $LOGDIR)"

echo "smoke: CG solve over TCP"
"$BIN/tfcg" -mode cluster -spec "$SPEC" -workers $TASKS -n 256 -iters 300 -tol 1e-6

echo "smoke: SGD training over TCP"
"$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3

echo "smoke: fused multi-tensor SGD over TCP (AllReduceFused + async loss handles)"
"$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3 \
  -param-tensors 4 -fuse

# --- fusion bit-identity: fused and unfused runs must end on the same bits -
CKPT_UNFUSED=$(mktemp -t tfhpc_smoke_unfused_XXXX.ckpt)
CKPT_FUSED=$(mktemp -t tfhpc_smoke_fused_XXXX.ckpt)
echo "smoke: fused-vs-unfused bit-identity on final weights"
"$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
  -param-tensors 4 -checkpoint "$CKPT_UNFUSED"
"$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
  -param-tensors 4 -fuse -checkpoint "$CKPT_FUSED"
if ! cmp -s "$CKPT_UNFUSED" "$CKPT_FUSED"; then
  echo "smoke: FAIL — fused SGD checkpoint differs from unfused (fusion broke bit-identity)"
  exit 1
fi
rm -f "$CKPT_UNFUSED" "$CKPT_FUSED"

# --- serving smoke: train -> checkpoint -> serve -> predict ---------------
CKPT=$(mktemp -t tfhpc_smoke_XXXX.ckpt)
SERVE_PORT=$((BASE_PORT + 100))
SERVE_ADDR="127.0.0.1:${SERVE_PORT}"

echo "smoke: training + checkpointing the serving model"
"$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 30 -checkpoint "$CKPT"

echo "smoke: booting tfserve on $SERVE_ADDR"
"$BIN/tfserve" -listen "$SERVE_ADDR" -model "smoke=$CKPT" -max-batch 32 -batch-timeout 5ms \
  >"$LOGDIR/tfserve.log" 2>&1 &
pids+=($!)

echo "smoke: concurrent HTTP predicts (batched must equal single, bit-for-bit)"
"$BIN/serving_smoke" -addr "http://$SERVE_ADDR" -model smoke -features 64
rm -f "$CKPT"

echo "smoke: OK"
