#!/usr/bin/env bash
# Distributed smoke test: build the binaries, boot a 4-task localhost cluster
# as real processes, run a CG solve and an SGD epoch over TCP (collectives
# ring between the tfserver tasks), and fail on nonzero exit — tfcg enforces
# the residual tolerance itself and tfsgd enforces loss decrease and replica
# consistency.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-bin}
mkdir -p "$BIN"
go build -o "$BIN/tfserver" ./cmd/tfserver
go build -o "$BIN/tfcg" ./cmd/tfcg
go build -o "$BIN/tfsgd" ./cmd/tfsgd

BASE_PORT=${BASE_PORT:-17841}
TASKS=4
SPEC=""
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

# Bind the wildcard address but dial loopback: the listen and advertised
# addresses genuinely differ, exercising tfserver -advertise.
for i in $(seq 0 $((TASKS - 1))); do
  port=$((BASE_PORT + i))
  addr="127.0.0.1:${port}"
  SPEC="${SPEC:+$SPEC,}$addr"
  "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" &
  pids+=($!)
done
echo "smoke: booted $TASKS tfserver tasks: $SPEC"

echo "smoke: CG solve over TCP"
"$BIN/tfcg" -mode cluster -spec "$SPEC" -workers $TASKS -n 256 -iters 300 -tol 1e-6

echo "smoke: SGD training over TCP"
"$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3

echo "smoke: OK"
