#!/usr/bin/env bash
# Distributed smoke tests over real processes. Five legs, gated by
# SMOKE_ONLY (core|elastic|rollout|telemetry|generate|all, default all):
#
# core — build the binaries, boot a 4-task localhost cluster as real
# processes, run a CG solve and an SGD epoch over TCP (collectives ring
# between the tfserver tasks), a fused multi-tensor SGD epoch over the same
# cluster, and fail on nonzero exit — tfcg enforces the residual tolerance
# itself and tfsgd enforces loss decrease and replica consistency. The fusion
# leg additionally asserts the engine's numerics contract: a fused run's
# final weights must be bit-identical to the unfused run's (both reduce
# through the same doubling tree), compared via checkpoint files. Then the
# serving smoke: tfsgd checkpoints its trained model, tfserve serves it, and
# concurrent HTTP predicts must coalesce while staying bit-identical to
# single-request answers.
#
# elastic — the fault-tolerance contract: boot 4 tfservers, kill -9 one of
# them mid-epoch, restart it, and require the training run to shrink around
# the casualty, resume from its checkpoint, grow back to full width when the
# task returns, and land within tolerance of an uninterrupted run — without
# the driver restarting.
#
# rollout — the control-plane contract: boot a tfserve fleet with
# -autoscale/-canary, put it under sustained HTTP load, and require a full
# lifecycle — autoscaler scale-up, canary rollout stepped to promotion,
# scale-down after the load stops — with zero dropped requests and zero
# autoscaler flaps (rollout_smoke fails on any non-2xx or flap).
#
# telemetry — the observability contract: every serving leg above also
# scrapes /metricz and fails on absent or non-monotonic counters; this leg
# additionally runs two cross-process exercises with TFHPC_TRACE_OUT set —
# a collective allreduce between two tfserver tasks and a routed predict
# through a tfserve router over two replicas — and runs trace_check over the
# per-process dumps: the merged document must parse, span >= 2 pids, carry an
# s/f flow pair across pids, and keep every parent/child link resolvable.
# The merged artifacts land in $BIN/logs/ ready for ui.perfetto.dev.
#
# generate — the generative serving contract: tfsgd trains and checkpoints an
# autoregressive model, tfserve serves it with the continuous-batching engine,
# and generate_smoke drives concurrent SSE token streams that must be
# bit-identical to a sequential reference while decoding in interleaved
# engine steps (continuous batching, not flush-and-refill), then cancels one
# stream mid-decode and requires /metricz to show the slot reclaimed with the
# slot-leak counter exactly zero.
#
# Every leg runs under a timeout(1) wrapper: a hung leg exits with the
# distinct code 97 instead of stalling the CI job to its global limit.
#
# Server processes log to $BIN/logs/ so CI can upload them when a leg fails.
set -euo pipefail
# Absolute self-path, captured before the cd: the timeout wrapper re-execs
# this script for each leg.
SELF="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
cd "$(dirname "$0")/.."

BIN=${BIN:-bin}
LOGDIR="$BIN/logs"
mkdir -p "$BIN" "$LOGDIR"
go build -o "$BIN/tfserver" ./cmd/tfserver
go build -o "$BIN/tfcg" ./cmd/tfcg
go build -o "$BIN/tfsgd" ./cmd/tfsgd
go build -o "$BIN/tfserve" ./cmd/tfserve
go build -o "$BIN/serving_smoke" ./scripts/serving_smoke
go build -o "$BIN/rollout_smoke" ./scripts/rollout_smoke
go build -o "$BIN/generate_smoke" ./scripts/generate_smoke
go build -o "$BIN/trace_check" ./scripts/trace_check

BASE_PORT=${BASE_PORT:-17841}
SMOKE_ONLY=${SMOKE_ONLY:-all}
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT
# timeout(1) TERMs the leg process; without this the EXIT trap would not run
# and booted servers would leak past the leg.
trap 'cleanup; exit 143' TERM INT

# scrape_metric ADDR SERIES prints the value of one /metricz series (SERIES is
# the exact exposition token, labels included), retrying while the server
# comes up. Exits nonzero when the series never appears.
scrape_metric() {
  local addr=$1 series=$2 v
  for _ in $(seq 1 50); do
    v=$(curl -sf "http://$addr/metricz" | awk -v n="$series" '$1 == n { print $2; exit }')
    if [ -n "$v" ]; then
      echo "$v"
      return 0
    fi
    sleep 0.1
  done
  echo "smoke: FAIL — metric $series never appeared on $addr/metricz" >&2
  return 1
}

# assert_monotonic NAME BEFORE AFTER fails unless AFTER > BEFORE: the counter
# must exist on both scrapes and move under load.
assert_monotonic() {
  local name=$1 before=$2 after=$3
  if [ -z "$before" ] || [ -z "$after" ] || [ "$after" -le "$before" ]; then
    echo "smoke: FAIL — counter $name not monotonic under load (before=$before after=$after)"
    exit 1
  fi
  echo "smoke: counter $name $before -> $after OK"
}

run_core() {
  local TASKS=4
  local SPEC=""
  # Bind the wildcard address but dial loopback: the listen and advertised
  # addresses genuinely differ, exercising tfserver -advertise.
  for i in $(seq 0 $((TASKS - 1))); do
    local port=$((BASE_PORT + i))
    local addr="127.0.0.1:${port}"
    SPEC="${SPEC:+$SPEC,}$addr"
    "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" \
      >"$LOGDIR/tfserver-$i.log" 2>&1 &
    pids+=($!)
  done
  echo "smoke: booted $TASKS tfserver tasks: $SPEC (logs in $LOGDIR)"

  echo "smoke: CG solve over TCP"
  "$BIN/tfcg" -mode cluster -spec "$SPEC" -workers $TASKS -n 256 -iters 300 -tol 1e-6

  echo "smoke: SGD training over TCP"
  "$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3

  echo "smoke: fused multi-tensor SGD over TCP (AllReduceFused + async loss handles)"
  "$BIN/tfsgd" -mode cluster -spec "$SPEC" -workers $TASKS -features 128 -rows 256 -steps 25 -lr 0.3 \
    -param-tensors 4 -fuse

  # --- fusion bit-identity: fused and unfused runs must end on the same bits
  local CKPT_UNFUSED CKPT_FUSED
  CKPT_UNFUSED=$(mktemp -t tfhpc_smoke_unfused_XXXX.ckpt)
  CKPT_FUSED=$(mktemp -t tfhpc_smoke_fused_XXXX.ckpt)
  echo "smoke: fused-vs-unfused bit-identity on final weights"
  "$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
    -param-tensors 4 -checkpoint "$CKPT_UNFUSED"
  "$BIN/tfsgd" -mode real -features 64 -rows 128 -workers 2 -steps 20 \
    -param-tensors 4 -fuse -checkpoint "$CKPT_FUSED"
  if ! cmp -s "$CKPT_UNFUSED" "$CKPT_FUSED"; then
    echo "smoke: FAIL — fused SGD checkpoint differs from unfused (fusion broke bit-identity)"
    exit 1
  fi
  rm -f "$CKPT_UNFUSED" "$CKPT_FUSED"

  # --- serving smoke: train -> checkpoint -> serve -> predict ---------------
  local CKPT SERVE_PORT SERVE_ADDR
  CKPT=$(mktemp -t tfhpc_smoke_XXXX.ckpt)
  SERVE_PORT=$((BASE_PORT + 100))
  SERVE_ADDR="127.0.0.1:${SERVE_PORT}"

  echo "smoke: training + checkpointing the serving model"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 30 -checkpoint "$CKPT"

  echo "smoke: booting tfserve on $SERVE_ADDR"
  "$BIN/tfserve" -listen "$SERVE_ADDR" -model "smoke=$CKPT" -max-batch 32 -batch-timeout 5ms \
    >"$LOGDIR/tfserve.log" 2>&1 &
  pids+=($!)

  local ROWS_BEFORE BATCHES_BEFORE
  ROWS_BEFORE=$(scrape_metric "$SERVE_ADDR" tfhpc_batcher_rows_total)
  BATCHES_BEFORE=$(scrape_metric "$SERVE_ADDR" tfhpc_batcher_batches_total)

  echo "smoke: concurrent HTTP predicts (batched must equal single, bit-for-bit)"
  "$BIN/serving_smoke" -addr "http://$SERVE_ADDR" -model smoke -features 64

  echo "smoke: /metricz scrape after load"
  local ROWS_AFTER BATCHES_AFTER
  ROWS_AFTER=$(scrape_metric "$SERVE_ADDR" tfhpc_batcher_rows_total)
  BATCHES_AFTER=$(scrape_metric "$SERVE_ADDR" tfhpc_batcher_batches_total)
  assert_monotonic tfhpc_batcher_rows_total "$ROWS_BEFORE" "$ROWS_AFTER"
  assert_monotonic tfhpc_batcher_batches_total "$BATCHES_BEFORE" "$BATCHES_AFTER"
  rm -f "$CKPT"
}

run_elastic() {
  local TASKS=4 VICTIM=2
  local EBASE=$((BASE_PORT + 20))
  local ESPEC=""
  local -a epids=()
  for i in $(seq 0 $((TASKS - 1))); do
    local port=$((EBASE + i))
    local addr="127.0.0.1:${port}"
    ESPEC="${ESPEC:+$ESPEC,}$addr"
    "$BIN/tfserver" -job worker -task "$i" -listen "0.0.0.0:${port}" -advertise "$addr" \
      >"$LOGDIR/elastic-tfserver-$i.log" 2>&1 &
    epids[$i]=$!
    pids+=($!)
  done
  echo "smoke: elastic leg booted $TASKS tfserver tasks: $ESPEC"

  local SGD_ARGS=(-spec "$ESPEC" -workers $TASKS -features 64 -rows 128 -steps 40 -lr 0.3 -ckpt-every 3)

  echo "smoke: elastic baseline (uninterrupted)"
  "$BIN/tfsgd" -mode elastic "${SGD_ARGS[@]}" >"$LOGDIR/elastic-baseline.log" 2>&1
  cat "$LOGDIR/elastic-baseline.log"
  local BASE_LOSS
  BASE_LOSS=$(sed -n 's/.*final_loss=\([^ ]*\).*/\1/p' "$LOGDIR/elastic-baseline.log")
  if [ -z "$BASE_LOSS" ]; then
    echo "smoke: FAIL — elastic baseline printed no final_loss"
    exit 1
  fi

  local CKPT
  CKPT=$(mktemp -u -t tfhpc_elastic_XXXX.ckpt)
  echo "smoke: elastic run with kill -9 of task $VICTIM mid-epoch"
  # -step-delay paces the run so the kill lands mid-training and the restart
  # is back before the final checkpoint boundaries.
  "$BIN/tfsgd" -mode elastic "${SGD_ARGS[@]}" -ckpt-file "$CKPT" -step-delay 50ms \
    >"$LOGDIR/elastic-run.log" 2>&1 &
  local run_pid=$!
  sleep 0.8
  echo "smoke: kill -9 tfserver task $VICTIM (pid ${epids[$VICTIM]})"
  kill -9 "${epids[$VICTIM]}"
  sleep 0.4
  local vport=$((EBASE + VICTIM))
  local vaddr="127.0.0.1:${vport}"
  echo "smoke: restarting tfserver task $VICTIM on $vaddr"
  "$BIN/tfserver" -job worker -task "$VICTIM" -listen "0.0.0.0:${vport}" -advertise "$vaddr" \
    >"$LOGDIR/elastic-tfserver-$VICTIM-restarted.log" 2>&1 &
  pids+=($!)

  if ! wait "$run_pid"; then
    echo "smoke: FAIL — elastic run exited nonzero"
    cat "$LOGDIR/elastic-run.log"
    exit 1
  fi
  cat "$LOGDIR/elastic-run.log"
  rm -f "$CKPT"

  local SUMMARY LOSS SHRINKS GROWS WORKERS
  SUMMARY=$(grep 'final_loss=' "$LOGDIR/elastic-run.log")
  LOSS=$(sed -n 's/.*final_loss=\([^ ]*\).*/\1/p' <<<"$SUMMARY")
  SHRINKS=$(sed -n 's/.*shrinks=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  GROWS=$(sed -n 's/.*grows=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  WORKERS=$(sed -n 's/.*workers=\([0-9]*\).*/\1/p' <<<"$SUMMARY")
  if [ "${SHRINKS:-0}" -lt 1 ]; then
    echo "smoke: FAIL — run never shrank (the kill missed the training window)"
    exit 1
  fi
  if [ "${GROWS:-0}" -lt 1 ]; then
    echo "smoke: FAIL — restarted task never rejoined"
    exit 1
  fi
  if [ "${WORKERS:-0}" -ne $TASKS ]; then
    echo "smoke: FAIL — finished at width ${WORKERS:-0}, want $TASKS"
    exit 1
  fi
  awk -v got="$LOSS" -v base="$BASE_LOSS" 'BEGIN {
    d = got - base; if (d < 0) d = -d
    b = base; if (b < 0) b = -b
    if (b == 0) { print "smoke: FAIL — degenerate baseline loss 0"; exit 1 }
    rel = d / b
    if (rel > 1e-3) {
      printf "smoke: FAIL — elastic loss %g vs baseline %g (relative diff %g > 1e-3)\n", got, base, rel
      exit 1
    }
    printf "smoke: elastic loss %g vs baseline %g (relative diff %g) OK\n", got, base, rel
  }'
}

run_rollout() {
  local RPORT=$((BASE_PORT + 60))
  local RADDR="127.0.0.1:${RPORT}"
  local CKPT_V1 CKPT_V2
  CKPT_V1=$(mktemp -t tfhpc_rollout_v1_XXXX.ckpt)
  CKPT_V2=$(mktemp -t tfhpc_rollout_v2_XXXX.ckpt)

  echo "smoke: training rollout checkpoints (v1: 30 steps, v2: 60 steps)"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 30 -checkpoint "$CKPT_V1"
  "$BIN/tfsgd" -mode real -features 64 -rows 256 -workers 2 -steps 60 -checkpoint "$CKPT_V2"

  echo "smoke: booting tfserve control plane on $RADDR"
  "$BIN/tfserve" -listen "$RADDR" -model "smoke=$CKPT_V1" -batch-timeout 1ms \
    -autoscale "min=1,max=3,target=3,tick=100ms,down-cooldown=1500ms" \
    -canary "steps=25;100,hold=1200ms,maxp99=500ms,maxerr=0.02,min-samples=10" \
    -slo-window 10s \
    >"$LOGDIR/tfserve-rollout.log" 2>&1 &
  pids+=($!)

  local REQ_BEFORE
  REQ_BEFORE=$(scrape_metric "$RADDR" 'tfhpc_monitor_requests_total{arm="stable"}')

  echo "smoke: full lifecycle under load (scale-up -> canary -> promote -> scale-down)"
  "$BIN/rollout_smoke" -addr "http://$RADDR" -model smoke \
    -canary-ckpt "$CKPT_V2" -version 60 -features 64 -clients 16

  echo "smoke: control-plane /metricz scrape after lifecycle"
  local REQ_AFTER CANARY_REQ SCALE_UPS TRANSITIONS
  REQ_AFTER=$(scrape_metric "$RADDR" 'tfhpc_monitor_requests_total{arm="stable"}')
  CANARY_REQ=$(scrape_metric "$RADDR" 'tfhpc_monitor_requests_total{arm="canary"}')
  SCALE_UPS=$(scrape_metric "$RADDR" tfhpc_autoscaler_scale_ups_total)
  TRANSITIONS=$(scrape_metric "$RADDR" tfhpc_rollout_transitions_total)
  assert_monotonic 'tfhpc_monitor_requests_total{arm="stable"}' "$REQ_BEFORE" "$REQ_AFTER"
  if [ "${CANARY_REQ:-0}" -le 0 ] || [ "${SCALE_UPS:-0}" -le 0 ] || [ "${TRANSITIONS:-0}" -le 0 ]; then
    echo "smoke: FAIL — control-plane counters flat (canary_req=$CANARY_REQ scale_ups=$SCALE_UPS transitions=$TRANSITIONS)"
    exit 1
  fi
  echo "smoke: control-plane counters canary_req=$CANARY_REQ scale_ups=$SCALE_UPS transitions=$TRANSITIONS OK"
  rm -f "$CKPT_V1" "$CKPT_V2"
}

run_telemetry() {
  # --- cross-process collective allreduce trace -----------------------------
  local TBASE=$((BASE_PORT + 80))
  local TSPEC="" i
  local -a tpids=()
  for i in 0 1; do
    local port=$((TBASE + i))
    local addr="127.0.0.1:${port}"
    TSPEC="${TSPEC:+$TSPEC,}$addr"
    TFHPC_TRACE_OUT="$LOGDIR/trace-coll-$i.json" "$BIN/tfserver" -job worker -task "$i" \
      -listen "0.0.0.0:${port}" -advertise "$addr" \
      >"$LOGDIR/telemetry-tfserver-$i.log" 2>&1 &
    tpids+=($!)
    pids+=($!)
  done
  echo "smoke: telemetry leg booted 2 traced tfserver tasks: $TSPEC"
  "$BIN/tfcg" -mode cluster -spec "$TSPEC" -workers 2 -n 128 -iters 200 -tol 1e-6
  for pid in "${tpids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${tpids[@]}"; do wait "$pid" 2>/dev/null || true; done

  echo "smoke: validating merged collective allreduce trace"
  "$BIN/trace_check" -require-span collective_allreduce \
    -merge "$LOGDIR/trace-collective-merged.json" \
    "$LOGDIR/trace-coll-0.json" "$LOGDIR/trace-coll-1.json"

  # --- cross-process routed predict trace -----------------------------------
  local RTBASE=$((TBASE + 10))
  local FRONT="127.0.0.1:$((RTBASE))"
  local -a rpids=()
  local REPLICAS=""
  for i in 1 2; do
    local haddr="127.0.0.1:$((RTBASE + 2 * i))"
    local raddr="127.0.0.1:$((RTBASE + 2 * i + 1))"
    REPLICAS="${REPLICAS:+$REPLICAS,}$raddr"
    TFHPC_TRACE_OUT="$LOGDIR/trace-replica-$i.json" "$BIN/tfserve" -listen "$haddr" -rpc "$raddr" \
      -synthetic routed -features 32 -steps 10 \
      >"$LOGDIR/telemetry-replica-$i.log" 2>&1 &
    rpids+=($!)
    pids+=($!)
  done
  TFHPC_TRACE_OUT="$LOGDIR/trace-router.json" "$BIN/tfserve" -listen "$FRONT" -route "$REPLICAS" \
    >"$LOGDIR/telemetry-router.log" 2>&1 &
  rpids+=($!)
  pids+=($!)

  echo "smoke: routed predicts through the traced front"
  local BODY='{"instances": [[0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1]]}'
  local ok=0
  for _ in $(seq 1 100); do
    if curl -sf -X POST "http://$FRONT/v1/models/routed:predict" -d "$BODY" >/dev/null; then
      ok=$((ok + 1))
      [ "$ok" -ge 20 ] && break
    fi
    sleep 0.1
  done
  if [ "$ok" -lt 20 ]; then
    echo "smoke: FAIL — only $ok/20 routed predicts succeeded"
    exit 1
  fi
  local ROUTED
  ROUTED=$(scrape_metric "$FRONT" tfhpc_router_routed_total)
  if [ "${ROUTED:-0}" -lt 20 ]; then
    echo "smoke: FAIL — router /metricz shows routed=$ROUTED, want >= 20"
    exit 1
  fi
  for pid in "${rpids[@]}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${rpids[@]}"; do wait "$pid" 2>/dev/null || true; done

  echo "smoke: validating merged routed-predict trace"
  "$BIN/trace_check" -require-span router_predict -require-span stream_predict_serve \
    -merge "$LOGDIR/trace-routed-merged.json" \
    "$LOGDIR/trace-router.json" "$LOGDIR/trace-replica-1.json" "$LOGDIR/trace-replica-2.json"
}

run_generate() {
  local GPORT=$((BASE_PORT + 120))
  local GADDR="127.0.0.1:${GPORT}"
  local GCKPT
  GCKPT=$(mktemp -t tfhpc_generate_XXXX.ckpt)

  echo "smoke: training + checkpointing the autoregressive model"
  "$BIN/tfsgd" -mode real -features 32 -rows 128 -workers 2 -steps 30 -gen-checkpoint "$GCKPT"

  echo "smoke: booting tfserve with the generative engine on $GADDR"
  # -gen-max-tokens lifted: the join-proof stream must keep decoding under
  # backpressure until the client has seen it straddle a whole second stream.
  "$BIN/tfserve" -listen "$GADDR" -genmodel "gen=$GCKPT" -gen-slots 4 -deadline 10s \
    -gen-max-tokens 1048576 \
    >"$LOGDIR/tfserve-generate.log" 2>&1 &
  pids+=($!)

  echo "smoke: concurrent SSE streams (bit-identity, interleaving, cancel reclaim)"
  "$BIN/generate_smoke" -addr "http://$GADDR" -model gen -features 32 -streams 6

  echo "smoke: generate /metricz scrape after load"
  local SEQS TOKENS
  SEQS=$(scrape_metric "$GADDR" tfhpc_generate_sequences_total)
  TOKENS=$(scrape_metric "$GADDR" tfhpc_generate_tokens_total)
  if [ "${SEQS:-0}" -lt 13 ] || [ "${TOKENS:-0}" -le 0 ]; then
    echo "smoke: FAIL — generate counters flat (sequences=$SEQS tokens=$TOKENS, want >= 13 sequences)"
    exit 1
  fi
  echo "smoke: generate counters sequences=$SEQS tokens=$TOKENS OK"
  rm -f "$GCKPT"
}

# Internal re-entry point: `ci_smoke.sh --leg <name>` runs one leg directly
# (no timeout wrapper) — it is what the wrapper execs under timeout(1).
if [ "${1:-}" = "--leg" ]; then
  "run_${2:?--leg needs a leg name}"
  exit 0
fi

LEG_TIMEOUT=${LEG_TIMEOUT:-420}
run_leg() {
  local leg=$1 rc=0
  echo "smoke: leg '$leg' (timeout ${LEG_TIMEOUT}s)"
  timeout --kill-after=20 "$LEG_TIMEOUT" "$SELF" --leg "$leg" || rc=$?
  if [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
    echo "smoke: FAIL — leg '$leg' exceeded its ${LEG_TIMEOUT}s timeout" >&2
    exit 97
  elif [ "$rc" -ne 0 ]; then
    echo "smoke: FAIL — leg '$leg' exited $rc" >&2
    exit "$rc"
  fi
}

case "$SMOKE_ONLY" in
  core) run_leg core ;;
  elastic) run_leg elastic ;;
  rollout) run_leg rollout ;;
  telemetry) run_leg telemetry ;;
  generate) run_leg generate ;;
  all)
    run_leg core
    run_leg elastic
    run_leg rollout
    run_leg telemetry
    run_leg generate
    ;;
  *)
    echo "smoke: unknown SMOKE_ONLY=$SMOKE_ONLY (want core|elastic|rollout|telemetry|generate|all)" >&2
    exit 1
    ;;
esac

echo "smoke: OK"
