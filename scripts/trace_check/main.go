// trace_check validates (and optionally merges) the Chrome/Perfetto trace
// documents the telemetry tier dumps, one file per process. The CI smoke runs
// it over the dumps of a cross-process exercise and fails the build unless
// the merged document is what Perfetto would render as one distributed trace:
//
//   - every file parses and contributes events;
//   - the merged set spans at least -min-pids distinct processes;
//   - at least one flow id appears as an 's' (start) in one process and an
//     'f' (finish) in a different one — the cross-process arrow;
//   - every span that claims a parent can find it: an 'X' event whose
//     args.span equals the child's args.parent within the same args.trace,
//     in any process;
//   - every -require-span name occurs as an 'X' event somewhere.
//
// -merge writes the combined {"traceEvents": [...]} document so a failing
// run leaves one artifact a human can drop straight into ui.perfetto.dev.
//
//	trace_check -require-span rpc_call -require-span rpc_serve \
//	    -merge merged.json router.json replica0.json replica1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type event struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	ID   string            `json:"id,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type doc struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// stringList is a repeatable -require-span flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	var requireSpans stringList
	minPIDs := flag.Int("min-pids", 2, "minimum distinct process ids in the merged trace")
	requireFlow := flag.Bool("require-flow", true, "require an s/f flow pair linking two different pids")
	mergeOut := flag.String("merge", "", "write the merged traceEvents document here")
	flag.Var(&requireSpans, "require-span", "require an 'X' span with this name (repeatable)")
	flag.Parse()
	if flag.NArg() == 0 {
		fatalf("usage: trace_check [flags] trace.json...")
	}

	var events []event
	var raw []json.RawMessage
	for _, path := range flag.Args() {
		buf, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		var d doc
		if err := json.Unmarshal(buf, &d); err != nil {
			fatalf("%s: invalid trace JSON: %v", path, err)
		}
		if len(d.TraceEvents) == 0 {
			fatalf("%s: no traceEvents (process recorded nothing)", path)
		}
		for _, r := range d.TraceEvents {
			var ev event
			if err := json.Unmarshal(r, &ev); err != nil {
				fatalf("%s: bad event: %v", path, err)
			}
			events = append(events, ev)
		}
		raw = append(raw, d.TraceEvents...)
	}

	pids := map[int]bool{}
	spanNames := map[string]bool{}
	// spanIDs maps trace -> set of span ids seen, for the parent link check.
	spanIDs := map[string]map[string]bool{}
	type parentRef struct{ name, trace, parent string }
	var parents []parentRef
	flowStarts := map[string]map[int]bool{} // flow id -> pids emitting 's'
	flowEnds := map[string]map[int]bool{}   // flow id -> pids emitting 'f'
	for _, ev := range events {
		pids[ev.PID] = true
		switch ev.Ph {
		case "X":
			spanNames[ev.Name] = true
			tr, sp := ev.Args["trace"], ev.Args["span"]
			if tr == "" || sp == "" {
				fatalf("span %q in pid %d lost its trace/span args", ev.Name, ev.PID)
			}
			if spanIDs[tr] == nil {
				spanIDs[tr] = map[string]bool{}
			}
			spanIDs[tr][sp] = true
			if p := ev.Args["parent"]; p != "" {
				parents = append(parents, parentRef{ev.Name, tr, p})
			}
		case "s":
			mark(flowStarts, ev.ID, ev.PID)
		case "f":
			mark(flowEnds, ev.ID, ev.PID)
		}
	}

	if len(pids) < *minPIDs {
		fatalf("merged trace covers %d process(es), want >= %d", len(pids), *minPIDs)
	}
	// A cross-process flow is an id whose 'f' lands in a pid that never
	// emitted the matching 's' — the arrow genuinely crossed a boundary.
	crossFlows := 0
	for id, starts := range flowStarts {
		for endPID := range flowEnds[id] {
			if !starts[endPID] {
				crossFlows++
				break
			}
		}
	}
	if *requireFlow && crossFlows == 0 {
		fatalf("no s/f flow pair links two different pids (cross-process arrow missing)")
	}
	broken := 0
	for _, p := range parents {
		if !spanIDs[p.trace][p.parent] {
			fmt.Fprintf(os.Stderr, "trace_check: span %q (trace %s) references missing parent %s\n",
				p.name, p.trace, p.parent)
			broken++
		}
	}
	if broken > 0 {
		fatalf("%d span(s) with dangling parent links", broken)
	}
	for _, name := range requireSpans {
		if !spanNames[name] {
			fatalf("required span %q absent from the merged trace", name)
		}
	}

	if *mergeOut != "" {
		buf, err := json.Marshal(struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}{raw})
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*mergeOut, buf, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("trace_check: OK — %d events, %d pids, %d cross-process flow(s), %d parent link(s)\n",
		len(events), len(pids), crossFlows, len(parents))
}

func mark(m map[string]map[int]bool, id string, pid int) {
	if id == "" {
		return
	}
	if m[id] == nil {
		m[id] = map[int]bool{}
	}
	m[id][pid] = true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "trace_check: FAIL — "+format+"\n", args...)
	os.Exit(1)
}
