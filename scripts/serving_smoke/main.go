// serving_smoke is the CI client for the tfserve smoke: it waits for
// readiness, fires concurrent single-row HTTP predicts, replays the same
// rows as one batched request, and asserts (1) batched answers are
// bit-for-bit identical to the single-request answers and (2) the stats
// endpoint proves real coalescing happened (max observed batch ≥ 2).
//
//	go run ./scripts/serving_smoke -addr http://127.0.0.1:8500 -model smoke -features 64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"time"

	"tfhpc/internal/tensor"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8500", "tfserve HTTP base URL")
	model := flag.String("model", "smoke", "model name to exercise")
	features := flag.Int("features", 64, "model feature dimension")
	clients := flag.Int("clients", 24, "concurrent single-row clients")
	rounds := flag.Int("rounds", 8, "rows per client")
	wait := flag.Duration("wait", 15*time.Second, "readiness wait budget")
	flag.Parse()

	if err := waitReady(*addr, *wait); err != nil {
		fatal(err)
	}
	fmt.Printf("serving_smoke: %s ready\n", *addr)

	// Deterministic row set, one per (client, round).
	n := *clients * *rounds
	rows := make([][]float64, n)
	r := tensor.NewRNG(1234)
	for i := range rows {
		row := make([]float64, *features)
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		rows[i] = row
	}

	// Concurrent single-row predicts: this is the traffic that must
	// coalesce server-side.
	singles := make([]float64, n)
	errs := make([]error, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < *rounds; k++ {
				i := c**rounds + k
				preds, err := predict(*addr, *model, [][]float64{rows[i]})
				if err != nil {
					errs[c] = fmt.Errorf("single predict %d: %w", i, err)
					return
				}
				if len(preds) != 1 {
					errs[c] = fmt.Errorf("single predict %d: %d predictions", i, len(preds))
					return
				}
				singles[i] = preds[0]
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			fatal(err)
		}
	}

	// One batched request over the identical rows: answers must be
	// bit-for-bit equal to the single-request answers.
	batched, err := predict(*addr, *model, rows)
	if err != nil {
		fatal(fmt.Errorf("batched predict: %w", err))
	}
	if len(batched) != n {
		fatal(fmt.Errorf("batched predict returned %d predictions, want %d", len(batched), n))
	}
	for i := range rows {
		if math.Float64bits(batched[i]) != math.Float64bits(singles[i]) {
			fatal(fmt.Errorf("row %d: batched %x != single %x (not bit-identical)",
				i, math.Float64bits(batched[i]), math.Float64bits(singles[i])))
		}
	}
	fmt.Printf("serving_smoke: %d batched answers bit-identical to single-request answers\n", n)

	// The stats endpoint must prove the micro-batcher actually coalesced.
	st, err := stats(*addr, *model)
	if err != nil {
		fatal(err)
	}
	if st.MaxBatch < 2 {
		fatal(fmt.Errorf("no batching occurred: max_batch=%d (rows=%d batches=%d)",
			st.MaxBatch, st.Rows, st.Batches))
	}
	fmt.Printf("serving_smoke: OK — rows=%d batches=%d mean_batch=%.2f max_batch=%d rejected=%d expired=%d\n",
		st.Rows, st.Batches, st.MeanBatch, st.MaxBatch, st.Rejected, st.Expired)
}

func waitReady(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last err %v)", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func predict(addr, model string, rows [][]float64) ([]float64, error) {
	body, err := json.Marshal(map[string]any{"instances": rows})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/models/%s:predict", addr, model),
		"application/json", bytes.NewBuffer(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e["error"])
	}
	var out struct {
		Predictions []float64 `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Predictions, nil
}

// modelStats is the /statsz per-model slice of the serving snapshot.
type modelStats struct {
	Model     string  `json:"model"`
	Rows      int64   `json:"rows"`
	Batches   int64   `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int64   `json:"max_batch"`
	Rejected  int64   `json:"rejected"`
	Expired   int64   `json:"expired"`
}

func stats(addr, model string) (*modelStats, error) {
	resp, err := http.Get(addr + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Models []modelStats `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	for i := range out.Models {
		if out.Models[i].Model == model {
			return &out.Models[i], nil
		}
	}
	return nil, fmt.Errorf("model %q missing from /statsz", model)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serving_smoke: FAIL: %v\n", err)
	os.Exit(1)
}
