// generate_smoke is the CI client for the generative serving smoke: against
// a tfserve hosting a tfsgd-trained autoregressive checkpoint it (1) decodes
// every prompt sequentially — one stream in flight at a time — as the
// reference, (2) replays the same prompts as N concurrent SSE streams and
// asserts token-for-token bit-identity with the reference, (3) proves the
// batching was continuous, not flush-and-refill, by holding one stream
// mid-decode under backpressure while a second joins, completes, and is
// passed — its engine-step interval strictly inside the held stream's,
// (4) cancels the held stream mid-decode by tearing down its connection,
// and (5) scrapes /metricz until the engine shows every slot reclaimed —
// with the slot-leak counter exactly zero and the cancellation counted.
//
//	go run ./scripts/generate_smoke -addr http://127.0.0.1:8500 -model gen -features 32
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"tfhpc/internal/tensor"
)

type token struct {
	Index int     `json:"index"`
	Value float64 `json:"token"`
	Step  uint64  `json:"step"`
}

type result struct {
	tokens []token
	finish string
	err    error
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8500", "tfserve HTTP base URL")
	model := flag.String("model", "gen", "generative model name to exercise")
	features := flag.Int("features", 32, "model feature dimension (prompt width)")
	streams := flag.Int("streams", 6, "concurrent SSE streams")
	wait := flag.Duration("wait", 15*time.Second, "readiness wait budget")
	flag.Parse()

	if err := waitReady(*addr, *wait); err != nil {
		fatal(err)
	}
	fmt.Printf("generate_smoke: %s ready\n", *addr)

	// Deterministic prompts, mixed token budgets — short and long sequences
	// must share the in-flight batch for the interleaving check to mean
	// anything.
	r := tensor.NewRNG(99)
	prompts := make([][]float64, *streams)
	budgets := make([]int, *streams)
	for i := range prompts {
		p := make([]float64, *features)
		for j := range p {
			p[j] = r.Float64()*2 - 1
		}
		prompts[i] = p
		budgets[i] = 24 + 16*(i%3)
	}

	// Sequential reference: one stream in flight at a time.
	refs := make([]result, *streams)
	for i := range prompts {
		refs[i] = generate(*addr, *model, prompts[i], budgets[i])
		if refs[i].err != nil {
			fatal(fmt.Errorf("sequential reference stream %d: %w", i, refs[i].err))
		}
		if len(refs[i].tokens) != budgets[i] || refs[i].finish != "length" {
			fatal(fmt.Errorf("reference stream %d: %d tokens finish=%q, want %d/length",
				i, len(refs[i].tokens), refs[i].finish, budgets[i]))
		}
	}
	fmt.Printf("generate_smoke: sequential reference decoded (%d streams)\n", *streams)

	// Concurrent replay: same prompts, all streams at once.
	conc := make([]result, *streams)
	var wg sync.WaitGroup
	for i := range prompts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conc[i] = generate(*addr, *model, prompts[i], budgets[i])
		}(i)
	}
	wg.Wait()
	for i := range conc {
		if conc[i].err != nil {
			fatal(fmt.Errorf("concurrent stream %d: %w", i, conc[i].err))
		}
		if len(conc[i].tokens) != len(refs[i].tokens) {
			fatal(fmt.Errorf("stream %d: %d tokens concurrent vs %d sequential",
				i, len(conc[i].tokens), len(refs[i].tokens)))
		}
		for k := range conc[i].tokens {
			got, want := conc[i].tokens[k], refs[i].tokens[k]
			if got.Index != k || math.Float64bits(got.Value) != math.Float64bits(want.Value) {
				fatal(fmt.Errorf("stream %d token %d: concurrent %x != sequential %x (continuous batching broke bit-identity)",
					i, k, math.Float64bits(got.Value), math.Float64bits(want.Value)))
			}
		}
	}
	fmt.Printf("generate_smoke: concurrent streams bit-identical to sequential reference\n")

	// Continuous batching proof, deterministic: hold stream A mid-decode by
	// backpressure (an effectively unbounded budget and a reader that
	// stops — the token window plus the filled TCP buffer stall A's slot,
	// nothing else), run short stream B to completion, then drain A until
	// its engine-step stamps pass B's last. B's whole life then sits
	// strictly inside A's — B joined the in-flight batch mid-decode, which
	// a flush-and-refill scheduler cannot produce. A is finally cancelled
	// by dropping its connection, which doubles as the slot-reclaim check.
	aResp, err := openStream(*addr, *model, prompts[0], 1<<20)
	if err != nil {
		fatal(fmt.Errorf("join-proof stream A: %w", err))
	}
	aScan := newSSEScanner(aResp)
	var aHeld token
	for i := 0; i < 5; i++ {
		t, done, err := aScan.next()
		if err != nil || done {
			fatal(fmt.Errorf("stream A died early (token %d, done=%v): %v", i, done, err))
		}
		aHeld = t
	}

	b := generate(*addr, *model, prompts[1], 48)
	if b.err != nil {
		fatal(fmt.Errorf("join-proof stream B: %w", b.err))
	}
	bRange := stepRange(b.tokens)
	if bRange[0] <= aHeld.Step {
		fatal(fmt.Errorf("stream B step %d not after A's held step %d", bRange[0], aHeld.Step))
	}
	// A was admitted before B and must still be decoding after B finished:
	// scan A forward (bounded) until a step beyond B's last appears.
	passed := false
	for i := 0; i < 500000; i++ {
		t, done, err := aScan.next()
		if err != nil || done {
			fatal(fmt.Errorf("stream A ended (done=%v) before passing B's last step: %v", done, err))
		}
		if t.Step > bRange[1] {
			passed = true
			break
		}
	}
	if !passed {
		fatal(fmt.Errorf("stream A never emitted a step past B's last (%d) — B did not join A's in-flight batch", bRange[1]))
	}
	fmt.Printf("generate_smoke: stream B (steps %d..%d) decoded strictly inside stream A's lifetime — mid-decode join\n",
		bRange[0], bRange[1])

	// Cancellation: drop A's connection mid-decode. The server's disconnect
	// watcher must cancel the sequence and reclaim its slot without a leak.
	aResp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		slots, err1 := scrapeMetric(*addr, "tfhpc_generate_slots_in_use")
		leaks, err2 := scrapeMetric(*addr, "tfhpc_generate_slot_leaks_total")
		cancelled, err3 := scrapeMetric(*addr, "tfhpc_generate_cancelled_total")
		if err1 == nil && err2 == nil && err3 == nil && slots == 0 {
			if leaks != 0 {
				fatal(fmt.Errorf("slot leak counter is %v, want exactly 0", leaks))
			}
			if cancelled < 1 {
				fatal(fmt.Errorf("cancelled counter is %v after a mid-stream disconnect, want >= 1", cancelled))
			}
			fmt.Printf("generate_smoke: cancelled slot reclaimed (slots_in_use=0, slot_leaks=0, cancelled=%v)\n", cancelled)
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("slots never drained after cancel: slots_in_use=%v slot_leaks=%v (errs %v %v %v)",
				slots, leaks, err1, err2, err3))
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("generate_smoke: OK — %d streams, bit-identical, interleaved, cancel reclaimed\n", *streams)
}

// sseScanner incrementally parses one SSE stream's data events.
type sseScanner struct {
	sc *bufio.Scanner
}

func newSSEScanner(resp *http.Response) *sseScanner {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &sseScanner{sc: sc}
}

// next returns the next token, or done=true on the finish event (with a
// non-nil error for server error events or malformed frames).
func (s *sseScanner) next() (t token, done bool, err error) {
	for s.sc.Scan() {
		line := s.sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		if strings.Contains(payload, `"done"`) || strings.Contains(payload, `"error"`) {
			var fin struct {
				Done   bool   `json:"done"`
				Finish string `json:"finish_reason"`
				Error  string `json:"error"`
			}
			if jerr := json.Unmarshal([]byte(payload), &fin); jerr == nil && (fin.Done || fin.Error != "") {
				if fin.Error != "" {
					return token{}, true, fmt.Errorf("server error event: %s", fin.Error)
				}
				return token{Index: -1}, true, nil
			}
		}
		if jerr := json.Unmarshal([]byte(payload), &t); jerr != nil {
			return token{}, true, fmt.Errorf("bad SSE token payload %q: %w", payload, jerr)
		}
		return t, false, nil
	}
	if serr := s.sc.Err(); serr != nil {
		return token{}, true, serr
	}
	return token{}, true, fmt.Errorf("stream ended without a finish event")
}

// generate runs one SSE stream to completion.
func generate(addr, model string, prompt []float64, maxTokens int) result {
	resp, err := openStream(addr, model, prompt, maxTokens)
	if err != nil {
		return result{err: err}
	}
	defer resp.Body.Close()
	var res result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		var fin struct {
			Done   bool   `json:"done"`
			Finish string `json:"finish_reason"`
			Error  string `json:"error"`
		}
		if strings.Contains(payload, `"done"`) || strings.Contains(payload, `"error"`) {
			if err := json.Unmarshal([]byte(payload), &fin); err == nil && (fin.Done || fin.Error != "") {
				if fin.Error != "" {
					res.err = fmt.Errorf("server error event: %s", fin.Error)
				}
				res.finish = fin.Finish
				return res
			}
		}
		var t token
		if err := json.Unmarshal([]byte(payload), &t); err != nil {
			return result{err: fmt.Errorf("bad SSE token payload %q: %w", payload, err)}
		}
		res.tokens = append(res.tokens, t)
	}
	if err := sc.Err(); err != nil {
		return result{err: err}
	}
	return result{err: fmt.Errorf("stream ended without a finish event")}
}

func openStream(addr, model string, prompt []float64, maxTokens int) (*http.Response, error) {
	body, err := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": maxTokens})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/models/%s:generate", addr, model),
		"application/json", bytes.NewBuffer(body))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, e["error"])
	}
	return resp, nil
}

func stepRange(toks []token) [2]uint64 {
	out := [2]uint64{math.MaxUint64, 0}
	for _, t := range toks {
		out[0] = min(out[0], t.Step)
		out[1] = max(out[1], t.Step)
	}
	return out
}

// scrapeMetric reads one series from the Prometheus text exposition.
func scrapeMetric(addr, series string) (float64, error) {
	resp, err := http.Get(addr + "/metricz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == series {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	return 0, fmt.Errorf("series %s missing from /metricz", series)
}

func waitReady(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last err %v)", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "generate_smoke: FAIL: %v\n", err)
	os.Exit(1)
}
