// rollout_smoke is the CI client for the control-plane smoke: against a
// tfserve running with -autoscale/-canary it (1) puts the fleet under
// sustained concurrent HTTP load, (2) waits for the autoscaler to scale up,
// (3) POSTs a canary rollout and waits for promotion, (4) verifies the
// promoted version is live, (5) stops the load and waits for the scale-down
// — failing on any non-2xx response (a dropped request) or any autoscaler
// flap along the way.
//
//	go run ./scripts/rollout_smoke -addr http://127.0.0.1:17901 \
//	    -model smoke -canary-ckpt v2.ckpt -version 60
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tfhpc/internal/tensor"
)

// controlz mirrors the /controlz status document (the fields the smoke
// asserts on).
type controlz struct {
	Autoscaler struct {
		Min        int   `json:"min"`
		Size       int   `json:"size"`
		ScaleUps   int64 `json:"scale_ups"`
		ScaleDowns int64 `json:"scale_downs"`
		Flaps      int64 `json:"flaps"`
	} `json:"autoscaler"`
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Rollout  *struct {
		State   string `json:"state"`
		Percent int    `json:"percent"`
		Version int    `json:"version"`
		Reason  string `json:"reason,omitempty"`
	} `json:"rollout,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:17901", "tfserve HTTP base URL")
	model := flag.String("model", "smoke", "model name to roll out")
	canaryCkpt := flag.String("canary-ckpt", "", "checkpoint path for the canary version")
	version := flag.Int("version", 0, "expected canary version (the checkpoint's step)")
	features := flag.Int("features", 64, "model feature dimension")
	clients := flag.Int("clients", 16, "concurrent load clients")
	wait := flag.Duration("wait", 20*time.Second, "readiness wait budget")
	rolloutWait := flag.Duration("rollout-wait", 90*time.Second, "rollout completion budget")
	flag.Parse()
	if *canaryCkpt == "" {
		fatal(fmt.Errorf("-canary-ckpt is required"))
	}

	if err := waitReady(*addr, *wait); err != nil {
		fatal(err)
	}
	fmt.Printf("rollout_smoke: %s ready\n", *addr)

	// Sustained closed-loop load: every client fires its next request as
	// soon as the previous answers. Any non-2xx is a dropped request and
	// fails the smoke — control actions must be invisible to callers.
	rows := make([][][]float64, *clients)
	r := tensor.NewRNG(99)
	for c := range rows {
		row := make([]float64, *features)
		for j := range row {
			row[j] = r.Float64()*2 - 1
		}
		rows[c] = [][]float64{row}
	}
	var stop, sent, failed atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for stop.Load() == 0 {
				sent.Add(1)
				if err := predict(*addr, *model, rows[c]); err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(c)
	}
	haltLoad := func() {
		stop.Store(1)
		wg.Wait()
	}

	// 1. The autoscaler must grow the fleet under this load.
	st, err := pollControlz(*addr, *wait, func(s *controlz) bool {
		return s.Autoscaler.Size >= 2
	})
	if err != nil {
		haltLoad()
		fatal(fmt.Errorf("scale-up: %w (last: %+v)", err, st))
	}
	fmt.Printf("rollout_smoke: scaled up to %d replicas (ups=%d)\n",
		st.Autoscaler.Size, st.Autoscaler.ScaleUps)

	// 2. Start the canary rollout and ride it to promotion. A rolled-back
	// or failed state is a hard failure — the canary checkpoint is healthy,
	// so the only correct terminal state is promoted.
	if err := postRollout(*addr, *model, *canaryCkpt, *version); err != nil {
		haltLoad()
		fatal(err)
	}
	fmt.Printf("rollout_smoke: rollout of %s v%d started\n", *model, *version)
	var terminalErr error
	st, err = pollControlz(*addr, *rolloutWait, func(s *controlz) bool {
		ro := s.Rollout
		if ro == nil {
			return false
		}
		switch ro.State {
		case "rolled-back", "failed":
			terminalErr = fmt.Errorf("rollout ended %s (reason %q) — the canary was healthy", ro.State, ro.Reason)
			return true
		}
		return ro.State == "promoted"
	})
	if terminalErr != nil {
		haltLoad()
		fatal(terminalErr)
	}
	if err != nil {
		haltLoad()
		fatal(fmt.Errorf("rollout: %w (last: %+v)", err, st))
	}
	fmt.Printf("rollout_smoke: rollout promoted at %d%%\n", st.Rollout.Percent)

	// 3. The promoted version must be what /v1/models now serves.
	if *version > 0 {
		if err := checkServedVersion(*addr, *model, *version); err != nil {
			haltLoad()
			fatal(err)
		}
		fmt.Printf("rollout_smoke: %s now serves v%d\n", *model, *version)
	}

	// 4. Stop the load: zero drops end to end, client- and server-side.
	haltLoad()
	if err, ok := firstErr.Load().(error); ok {
		fatal(fmt.Errorf("dropped request under rollout: %w", err))
	}
	if failed.Load() != 0 || sent.Load() == 0 {
		fatal(fmt.Errorf("load summary broken: sent=%d failed=%d", sent.Load(), failed.Load()))
	}
	st, err = getControlz(*addr)
	if err != nil {
		fatal(err)
	}
	if st.Errors != 0 {
		fatal(fmt.Errorf("control plane booked %d request errors (want 0)", st.Errors))
	}

	// 5. Idle now: the fleet must come back down to its floor.
	st, err = pollControlz(*addr, *rolloutWait, func(s *controlz) bool {
		return s.Autoscaler.Size <= s.Autoscaler.Min
	})
	if err != nil {
		fatal(fmt.Errorf("scale-down: %w (last: %+v)", err, st))
	}
	if st.Autoscaler.ScaleUps < 1 || st.Autoscaler.ScaleDowns < 1 {
		fatal(fmt.Errorf("autoscaler never cycled: ups=%d downs=%d",
			st.Autoscaler.ScaleUps, st.Autoscaler.ScaleDowns))
	}
	if st.Autoscaler.Flaps != 0 {
		fatal(fmt.Errorf("autoscaler flapped %d time(s) (want 0)", st.Autoscaler.Flaps))
	}
	fmt.Printf("rollout_smoke: OK — %d requests, 0 drops, rollout promoted, scale +%d/-%d, flaps 0\n",
		sent.Load(), st.Autoscaler.ScaleUps, st.Autoscaler.ScaleDowns)
}

func waitReady(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %v (last err %v)", addr, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func predict(addr, model string, rows [][]float64) error {
	body, err := json.Marshal(map[string]any{"instances": rows})
	if err != nil {
		return err
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/models/%s:predict", addr, model),
		"application/json", bytes.NewBuffer(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e["error"])
	}
	return nil
}

func getControlz(addr string) (*controlz, error) {
	resp, err := http.Get(addr + "/controlz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/controlz status %d", resp.StatusCode)
	}
	var st controlz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// pollControlz polls /controlz until ok(status) or the budget runs out,
// returning the last status either way.
func pollControlz(addr string, budget time.Duration, ok func(*controlz) bool) (*controlz, error) {
	deadline := time.Now().Add(budget)
	var last *controlz
	for {
		st, err := getControlz(addr)
		if err == nil {
			last = st
			if ok(st) {
				return st, nil
			}
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("condition not reached after %v", budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func postRollout(addr, model, path string, version int) error {
	body, err := json.Marshal(map[string]any{"model": model, "path": path, "version": version})
	if err != nil {
		return err
	}
	resp, err := http.Post(addr+"/controlz/rollout", "application/json", bytes.NewBuffer(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		return fmt.Errorf("rollout POST status %d: %s", resp.StatusCode, buf.String())
	}
	return nil
}

// checkServedVersion asserts /v1/models reports the model at the promoted
// version.
func checkServedVersion(addr, model string, version int) error {
	resp, err := http.Get(addr + "/v1/models")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Models []struct {
			Name    string `json:"name"`
			Version int    `json:"version"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	for _, m := range out.Models {
		if m.Name == model && m.Version == version {
			return nil
		}
	}
	return fmt.Errorf("model %s v%d missing from /v1/models (got %+v)", model, version, out.Models)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rollout_smoke: FAIL: %v\n", err)
	os.Exit(1)
}
